"""Cross-backend conformance matrix: every engine, bit-identical.

One shared corpus (``cases.py``) runs through every available backend and
both window representations; scans, edit distances, alignments, and located
alignments must match the pure-Python reference *exactly* — same CIGARs,
same scores, same match positions. This is the contract that lets the
registry treat backends as interchangeable: anything observable beyond
throughput is a conformance bug.

The sharded backend is instantiated with a small ``min_batch`` so the
corpus genuinely crosses the process pool instead of short-circuiting to
the in-process engine.
"""

import pytest

from cases import ALIGN_CORPUS, SCAN_CORPUS
from repro.core.aligner import GenAsmAligner
from repro.core.genasm_dc import WINDOW_REPRESENTATIONS
from repro.core.scoring import ScoringScheme
from repro.engine import PurePythonEngine, available_engines, get_engine

REFERENCE = PurePythonEngine()
SCORING = ScoringScheme.bwa_mem()

BACKENDS = available_engines()
REPRESENTATIONS = sorted(WINDOW_REPRESENTATIONS)


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    """One engine per available backend, pool-crossing for sharded."""
    if request.param == "sharded":
        from repro.engine.sharded import ShardedEngine

        engine = ShardedEngine(workers=2, min_batch=4)
        yield engine
        engine.close()
    else:
        yield get_engine(request.param)


def _by_k(corpus):
    """Cases grouped by threshold, so backends get real batches per call."""
    groups = {}
    for case in corpus:
        groups.setdefault(case.k, []).append(case)
    return sorted(groups.items())


K_GROUPS = _by_k(SCAN_CORPUS)


def _reference_scan_map(first_match_only):
    out = {}
    for k, group in K_GROUPS:
        results = REFERENCE.scan_batch(
            [(case.text, case.pattern) for case in group],
            k,
            first_match_only=first_match_only,
        )
        out.update(
            {case.name: res for case, res in zip(group, results)}
        )
    return out


@pytest.fixture(scope="module")
def reference_scans():
    return _reference_scan_map(first_match_only=False)


@pytest.fixture(scope="module")
def reference_first_matches():
    return _reference_scan_map(first_match_only=True)


@pytest.fixture(scope="module")
def reference_alignments():
    aligner = GenAsmAligner(engine=REFERENCE, window_representation="sene")
    pairs = [(case.text, case.pattern) for case in ALIGN_CORPUS]
    return dict(zip((c.name for c in ALIGN_CORPUS), aligner.align_batch(pairs)))


class TestScanConformance:
    def test_scan_positions_and_distances_match_reference(
        self, backend, reference_scans
    ):
        for k, group in K_GROUPS:
            results = backend.scan_batch(
                [(case.text, case.pattern) for case in group], k
            )
            for case, matches in zip(group, results):
                assert matches == reference_scans[case.name], (
                    f"{backend.name} diverged from reference on scan "
                    f"case {case.name!r} (k={k})"
                )

    def test_first_match_only_agrees_on_acceptance(
        self, backend, reference_first_matches
    ):
        for k, group in K_GROUPS:
            results = backend.scan_batch(
                [(case.text, case.pattern) for case in group],
                k,
                first_match_only=True,
            )
            for case, matches in zip(group, results):
                assert matches == reference_first_matches[case.name], (
                    f"{backend.name} first-match scan diverged "
                    f"on {case.name!r}"
                )

    def test_edit_distances_match_reference(self, backend, reference_scans):
        # The reference distance is the min over the full reference scan —
        # by definition of the engine interface's edit_distance_batch.
        for k, group in K_GROUPS:
            got = backend.edit_distance_batch(
                [(case.text, case.pattern) for case in group], k
            )
            for case, distance in zip(group, got):
                expected = min(
                    (m.distance for m in reference_scans[case.name]),
                    default=None,
                )
                assert distance == expected, (
                    f"{backend.name} edit distance diverged on {case.name!r}"
                )

    def test_empty_pattern_rejected_everywhere(self, backend):
        with pytest.raises(ValueError):
            backend.scan_batch([("ACGT", "")], 2)


class TestAlignConformance:
    @pytest.fixture(scope="class", params=REPRESENTATIONS)
    def representation(self, request):
        return request.param

    def test_cigars_scores_and_consumption_match_reference(
        self, backend, representation, reference_alignments
    ):
        aligner = GenAsmAligner(
            engine=backend, window_representation=representation
        )
        pairs = [(case.text, case.pattern) for case in ALIGN_CORPUS]
        alignments = aligner.align_batch(pairs)
        for case, alignment in zip(ALIGN_CORPUS, alignments):
            expected = reference_alignments[case.name]
            label = (
                f"{backend.name}/{representation} diverged from reference "
                f"on {case.name!r}"
            )
            assert str(alignment.cigar) == str(expected.cigar), label
            assert alignment.edit_distance == expected.edit_distance, label
            assert alignment.score(SCORING) == expected.score(SCORING), label
            assert alignment.text_consumed == expected.text_consumed, label

    def test_cigars_are_valid_transcripts(self, backend, representation):
        aligner = GenAsmAligner(
            engine=backend, window_representation=representation
        )
        for case in ALIGN_CORPUS:
            if "N" in case.text or "N" in case.pattern:
                continue  # is_valid_for has no wildcard notion
            alignment = aligner.align(case.text, case.pattern)
            assert alignment.cigar.is_valid_for(case.text, case.pattern), (
                f"{backend.name}/{representation} emitted an inconsistent "
                f"transcript on {case.name!r}"
            )


class TestLocatedAlignmentConformance:
    """align_located = scan (positions) + align (CIGAR) in one flow."""

    LOCATE_CASES = [
        case
        for case in SCAN_CORPUS
        if case.k <= 16 and 4 <= len(case.pattern) <= 300
    ]

    def test_located_alignments_match_reference(self, backend):
        reference_aligner = GenAsmAligner(engine=REFERENCE)
        aligner = GenAsmAligner(engine=backend)
        checked = 0
        for case in self.LOCATE_CASES:
            expected = reference_aligner.align_located(
                case.text, case.pattern, case.k
            )
            got = aligner.align_located(case.text, case.pattern, case.k)
            if expected is None:
                assert got is None, f"{backend.name} located {case.name!r}"
                continue
            checked += 1
            assert got is not None, f"{backend.name} missed {case.name!r}"
            assert got.text_start == expected.text_start, case.name
            assert str(got.cigar) == str(expected.cigar), case.name
            assert got.edit_distance == expected.edit_distance, case.name
        assert checked >= 5  # the corpus must keep real locate coverage
