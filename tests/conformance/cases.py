"""The shared conformance corpus: one list of cases, every backend.

With four ways to compute the same alignment (pure / batched / sharded
backends, SENE / edges window representations) correctness rests on
bit-identical parity, so the corpus concentrates every input class that has
ever differed between implementations of bitvector ASM kernels:

* degenerate strings (empty text, single bases, pattern == text);
* threshold extremes (``k = 0``, ``k >= m``, hopeless pairs);
* ambiguous ``N`` bases in the text, the pattern, and both;
* repeat structure (homopolymers, tandem repeats) that stresses traceback
  priority ordering;
* indel-heavy pairs where the read overhangs or underfills the region;
* pattern lengths straddling the window machinery's boundaries — the
  ``W = 64`` window, the ``W - O = 40`` consume limit, and the 64-bit
  machine word the batched backend packs into;
* realistic mapping shapes from 1 bp up to 10 kbp reads.

Cases are deterministic (fixed seed) so every backend sees byte-identical
inputs in every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sequences.mutate import MutationProfile, mutate


@dataclass(frozen=True)
class ConformanceCase:
    """One (text, pattern, k) probe with a stable name for test IDs."""

    name: str
    text: str
    pattern: str
    k: int

    def __str__(self) -> str:  # pragma: no cover - test IDs only
        return self.name


def _dna(length: int, rng: random.Random) -> str:
    return "".join(rng.choice("ACGT") for _ in range(length))


def _mutated_pair(
    name: str,
    length: int,
    error_rate: float,
    rng: random.Random,
    *,
    pad: int | None = None,
) -> ConformanceCase:
    """A mapping-shaped case: region of ``m + k`` and a mutated read."""
    k = pad if pad is not None else max(8, int(length * error_rate))
    region = _dna(length + k, rng)
    read = mutate(
        region[:length], MutationProfile(error_rate=error_rate), rng=rng
    ).sequence
    return ConformanceCase(name, region, read, k)


def build_corpus() -> list[ConformanceCase]:
    rng = random.Random(0xC0DE)
    cases = [
        # --- degenerate strings ----------------------------------------
        ConformanceCase("empty_text", "", "ACGT", 2),
        ConformanceCase("single_base_match", "A", "A", 0),
        ConformanceCase("single_base_mismatch", "A", "T", 1),
        ConformanceCase("single_base_reject", "A", "T", 0),
        ConformanceCase("pattern_equals_text", "ACGTACGT", "ACGTACGT", 3),
        ConformanceCase("pattern_longer_than_text", "ACG", "ACGTACGT", 8),
        # --- threshold extremes ----------------------------------------
        ConformanceCase("k_zero_exact", "TTACGTACGTTT", "ACGTACGT", 0),
        ConformanceCase("k_zero_near_miss", "TTACGTACGTTT", "ACGAACGT", 0),
        ConformanceCase("k_equals_m", "GGGGCCCCGGGG", "ACGT", 4),
        ConformanceCase("k_exceeds_m", "GGGGCCCCGGGG", "ACGT", 9),
        ConformanceCase("hopeless_pair", "A" * 24, "T" * 12, 4),
        # --- ambiguous bases -------------------------------------------
        ConformanceCase("n_in_text", "ACGTNNACGTACGT", "ACGTACGT", 3),
        ConformanceCase("n_in_pattern", "ACGTACGTACGT", "ACGNACGT", 3),
        ConformanceCase("n_in_both", "ACNTACGTNCGT", "ANGTACGT", 4),
        ConformanceCase("all_n_pattern", "ACGTACGTACGT", "NNNN", 4),
        # --- repeat structure ------------------------------------------
        ConformanceCase("homopolymer", "A" * 40, "A" * 25, 4),
        ConformanceCase(
            "homopolymer_indel", "A" * 40, "A" * 12 + "T" + "A" * 12, 4
        ),
        ConformanceCase("tandem_repeat", "ACAC" * 12, "CACA" * 6, 5),
        ConformanceCase("dinucleotide_shift", "ATATATATATAT", "TATATATA", 3),
    ]
    # --- indel-heavy pairs ---------------------------------------------
    base = _dna(60, rng)
    cases += [
        ConformanceCase(
            "deletion_heavy", base, base[:18] + base[30:52], 14
        ),
        ConformanceCase(
            "insertion_heavy",
            base[:40],
            base[:20] + _dna(10, rng) + base[20:40],
            12,
        ),
    ]
    # --- window / word boundary lengths --------------------------------
    # W - O = 40 is the per-window consume limit, W = 64 the window and
    # the batched backend's packing word, 128 the two-word boundary.
    for length in (39, 40, 41, 63, 64, 65, 128):
        cases.append(
            _mutated_pair(f"boundary_{length}bp", length, 0.06, rng)
        )
    # --- realistic mapping shapes --------------------------------------
    cases += [
        _mutated_pair("short_read_100bp", 100, 0.05, rng),
        _mutated_pair("noisy_read_250bp", 250, 0.15, rng),
        _mutated_pair("long_read_1kbp", 1_000, 0.10, rng),
        # The paper's long-read shape; pad (= scan k) kept small so the
        # full backend x representation matrix stays test-suite fast —
        # scan cost scales with k, align cost does not.
        _mutated_pair("long_read_10kbp", 10_000, 0.08, rng, pad=24),
    ]
    return cases


#: The corpus, materialized once per test session.
CORPUS: list[ConformanceCase] = build_corpus()

#: Cases legal for Bitap scans (the kernels reject empty patterns).
SCAN_CORPUS = [case for case in CORPUS if case.pattern]

#: Cases worth running through the full windowed aligner. Scanning 10 kbp
#: patterns at k ~ 800 would dominate suite runtime for no extra coverage,
#: so align cases keep their (already window-stressing) sizes but the scan
#: corpus carries the large-k work.
ALIGN_CORPUS = CORPUS
