"""Hypothesis parity: the compiled kernels vs the pure reference, bitwise.

The conformance matrix (``test_conformance.py``) already runs the fixed
corpus through the ``"native"`` backend via the registry; this suite
additionally drives the compiled scan / DC / traceback / align kernels with
*randomized* (text, pattern, k) — including wildcards, out-of-alphabet text
characters, multiword patterns for the scan, and non-default window
geometry — asserting every observable result is bit-identical to the pure
kernels. Skipped entirely when the extension is not built (the pure path
is then the only implementation, and other suites cover it).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.aligner import GenAsmAligner
from repro.core.bitap import bitap_scan
from repro.core.genasm_dc import run_dc_window
from repro.core.genasm_tb import traceback_window
from repro.core.kernels import (
    native_dc_window,
    native_scan,
)
from repro.core.scoring import TracebackConfig

pytestmark = pytest.mark.skipif(
    not kernels.native_available(),
    reason="repro.core._native is not built",
)

# Texts may contain the wildcard and characters outside the alphabet
# entirely (legal: they match nothing); patterns may contain the wildcard.
text_st = st.text(alphabet="ACGTNx", max_size=120)
pattern_st = st.text(alphabet="ACGTN", min_size=1, max_size=90)
window_text_st = st.text(alphabet="ACGTN", min_size=1, max_size=63)
window_pattern_st = st.text(alphabet="ACGTN", min_size=1, max_size=63)

CONFIGS = [TracebackConfig(), TracebackConfig(affine=False)]


@settings(max_examples=120, deadline=None)
@given(
    text=text_st,
    pattern=pattern_st,
    k=st.integers(min_value=0, max_value=8),
    first=st.booleans(),
)
def test_scan_bit_identical_to_pure(text, pattern, k, first):
    pure = bitap_scan(text, pattern, k, first_match_only=first)
    native = native_scan(text, pattern, k, first_match_only=first)
    assert native is not None  # DNA + latin-1 text always runs natively
    assert native == pure


@settings(max_examples=120, deadline=None)
@given(
    text=window_text_st,
    pattern=window_pattern_st,
    initial_budget=st.integers(min_value=1, max_value=64),
)
def test_dc_window_history_bit_identical_to_pure(
    text, pattern, initial_budget
):
    pure = run_dc_window(text, pattern, initial_budget=initial_budget)
    native = native_dc_window(text, pattern, initial_budget=initial_budget)
    assert native is not None
    assert native.k == pure.k
    assert native.edit_distance == pure.edit_distance
    # The packed history must decode to the reference R rows exactly.
    assert native.r_rows() == pure.r

    # Derived traceback edges agree cell by cell on a sample of the grid.
    for text_index in range(0, native.text_length, 7):
        for distance in range(0, native.k + 1, 3):
            assert native.edge_vectors(text_index, distance) == (
                pure.edge_vectors(text_index, distance)
            )


@settings(max_examples=120, deadline=None)
@given(
    text=window_text_st,
    pattern=window_pattern_st,
    consume_limit=st.integers(min_value=1, max_value=64),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
def test_traceback_bit_identical_to_pure(
    text, pattern, consume_limit, config_index
):
    config = CONFIGS[config_index]
    pure = traceback_window(
        run_dc_window(text, pattern),
        consume_limit=consume_limit,
        config=config,
    )
    native = traceback_window(
        native_dc_window(text, pattern),
        consume_limit=consume_limit,
        config=config,
    )
    assert native == pure


@settings(max_examples=80, deadline=None)
@given(
    text=st.text(alphabet="ACGTN", max_size=200),
    pattern=st.text(alphabet="ACGTN", max_size=180),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
def test_align_bit_identical_to_pure(text, pattern, config_index):
    config = CONFIGS[config_index]
    pure = GenAsmAligner(engine="pure", config=config).align(text, pattern)
    native = GenAsmAligner(engine="native", config=config).align(
        text, pattern
    )
    assert str(native.cigar) == str(pure.cigar)
    assert native.edit_distance == pure.edit_distance
    assert native.text_consumed == pure.text_consumed


@settings(max_examples=60, deadline=None)
@given(
    text=st.text(alphabet="ACGT", max_size=150),
    pattern=st.text(alphabet="ACGT", max_size=150),
    window_size=st.integers(min_value=2, max_value=80),
    overlap_frac=st.floats(min_value=0.0, max_value=0.9),
)
def test_align_parity_across_window_geometry(
    text, pattern, window_size, overlap_frac
):
    """Non-default (W, O) — including W > 64, the C kernel's fallback."""
    overlap = int(window_size * overlap_frac)
    pure = GenAsmAligner(
        engine="pure", window_size=window_size, overlap=overlap
    ).align(text, pattern)
    native = GenAsmAligner(
        engine="native", window_size=window_size, overlap=overlap
    ).align(text, pattern)
    assert str(native.cigar) == str(pure.cigar)
    assert native.text_consumed == pure.text_consumed
