"""Cross-module integration tests: the three use cases end to end."""

from repro.baselines.gotoh import gotoh_score
from repro.core.aligner import GenAsmAligner
from repro.core.prefilter import GenAsmFilter
from repro.core.scoring import ScoringScheme, TracebackConfig
from repro.core.edit_distance import genasm_edit_distance
from repro.hardware.memory import StackedMemorySystem
from repro.mapping.pipeline import make_genasm_mapper
from repro.mapping.sam import write_sam
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import (
    illumina_profile,
    pacbio_clr_profile,
    simulate_pair,
    simulate_reads,
)

import io


class TestUseCase1ReadAlignment:
    """Section 10.2: read alignment for short and long reads."""

    def test_short_read_mapping_end_to_end(self):
        genome = synthesize_genome(40_000, seed=100)
        mapper = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)
        reads = simulate_reads(
            genome, count=25, read_length=150, profile=illumina_profile(0.05), seed=101
        )
        results = mapper.map_reads([(r.name, r.sequence) for r in reads])
        correct = sum(
            1
            for read, result in zip(reads, results)
            if result.record.is_mapped
            and abs((result.record.position - 1) - read.true_start) <= 20
        )
        assert correct >= 22

        out = io.StringIO()
        write_sam(
            [r.record for r in results],
            out,
            reference_sequences=mapper.reference_sequences(),
        )
        assert out.getvalue().count("\n") == 25 + 3

    def test_long_read_alignment_quality(self):
        genome = synthesize_genome(30_000, seed=102)
        reads = simulate_reads(
            genome,
            count=3,
            read_length=3_000,
            profile=pacbio_clr_profile(0.10),
            seed=103,
            both_strands=False,
        )
        scheme = ScoringScheme.minimap2()
        aligner = GenAsmAligner(config=TracebackConfig.from_scoring(scheme))
        for read in reads:
            region = genome.region(read.true_start, read.true_length + 600)
            alignment = aligner.align(region, read.sequence)
            assert alignment.cigar.is_valid_for(region, read.sequence)
            # Edit count close to injected error count.
            assert alignment.edit_distance <= read.edit_count * 1.2 + 5

    def test_genasm_score_matches_gotoh_on_clean_reads(self):
        genome = synthesize_genome(10_000, seed=104)
        reads = simulate_reads(
            genome,
            count=8,
            read_length=120,
            profile=illumina_profile(0.03),
            seed=105,
            both_strands=False,
        )
        scheme = ScoringScheme.bwa_mem()
        aligner = GenAsmAligner(config=TracebackConfig.from_scoring(scheme))
        exact = 0
        for read in reads:
            region = genome.region(read.true_start, read.true_length + 20)
            alignment = aligner.align(region, read.sequence)
            optimal = gotoh_score(
                region[: alignment.text_consumed], read.sequence, scheme
            )
            if alignment.score(scheme) == optimal:
                exact += 1
        assert exact >= 6  # paper: 96.6% exact


class TestUseCase2PreAlignmentFiltering:
    """Section 10.3: filtering candidate pairs before alignment."""

    def test_filter_keeps_similar_rejects_dissimilar(self):
        threshold = 5
        filt = GenAsmFilter(threshold)
        similar_kept = 0
        dissimilar_rejected = 0
        for seed in range(10):
            ref, query, edits = simulate_pair(100, 0.98, seed=seed)
            if edits <= threshold and filt.accepts(ref, query):
                similar_kept += 1
            ref2, _, _ = simulate_pair(100, 0.98, seed=seed + 1000)
            _, query2, _ = simulate_pair(100, 0.98, seed=seed + 2000)
            if not filt.accepts(ref2, query2):
                dissimilar_rejected += 1
        assert similar_kept >= 8
        assert dissimilar_rejected >= 9


class TestUseCase3EditDistance:
    """Section 10.4: edit distance between arbitrary-length sequences."""

    def test_multi_kilobase_edit_distance(self):
        ref, query, injected = simulate_pair(5_000, 0.90, seed=77)
        result = genasm_edit_distance(ref, query)
        # Windowed distance tracks the injected divergence closely.
        assert injected * 0.8 <= result.distance <= injected * 1.2

    def test_arbitrary_lengths_same_result_regardless_of_windows(self):
        ref, query, _ = simulate_pair(800, 0.92, seed=78)
        d64 = genasm_edit_distance(ref, query).distance
        d48 = genasm_edit_distance(ref, query, window_size=48, overlap=16).distance
        assert abs(d64 - d48) <= max(2, d64 // 10)


class TestHardwareIntegration:
    def test_batch_alignment_through_vaults(self):
        genome = synthesize_genome(20_000, seed=106)
        reads = simulate_reads(
            genome,
            count=16,
            read_length=200,
            profile=illumina_profile(0.05),
            seed=107,
            both_strands=False,
        )
        tasks = [
            (genome.region(r.true_start, r.true_length + 30), r.sequence)
            for r in reads
        ]
        batch = StackedMemorySystem().run_batch(tasks)
        assert len(batch.results) == 16
        assert batch.within_stack_bandwidth
        for (region, read), result in zip(tasks, batch.results):
            assert result.alignment.cigar.is_valid_for(region, read)
