"""Unit tests for the table formatter."""

import pytest

from repro.eval.reporting import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ("A", "B"), [[1, "x"], [22, "yy"]], title="T"
        )
        lines = text.split("\n")
        assert lines[0] == "T"
        assert lines[1].startswith("A")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_column_alignment(self):
        text = format_table(("Name", "V"), [["long-name-here", 1]])
        header, rule, row = text.split("\n")
        assert len(header) == len(rule) == len(row)

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(("A",), [[1, 2]])

    def test_number_rendering(self):
        text = format_table(("N",), [[1_234_567], [0.000123], [3.14159]])
        assert "1,234,567" in text
        assert "0.000123" in text
        assert "3.14" in text
