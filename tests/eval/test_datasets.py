"""Unit tests for the dataset builders."""

from repro.eval.datasets import (
    edlib_pair_dataset,
    filter_pair_dataset,
    long_read_datasets,
    short_read_datasets,
)


class TestReadDatasets:
    def test_long_read_matrix(self):
        sets = long_read_datasets(reads_per_set=2, read_length=1_000, genome_length=20_000)
        assert len(sets) == 4
        names = {s.name for s in sets}
        assert names == {"PacBio - 10%", "PacBio - 15%", "ONT - 10%", "ONT - 15%"}
        for dataset in sets:
            assert len(dataset.reads) == 2
            for read in dataset.reads:
                assert read.true_length == 1_000

    def test_short_read_matrix(self):
        sets = short_read_datasets(reads_per_set=3)
        assert [s.read_length for s in sets] == [100, 150, 250]
        assert all(s.error_rate == 0.05 for s in sets)

    def test_error_rates_realized(self):
        sets = long_read_datasets(reads_per_set=2, read_length=2_000, genome_length=30_000)
        for dataset in sets:
            for read in dataset.reads:
                observed = read.edit_count / read.true_length
                assert abs(observed - dataset.error_rate) < 0.04


class TestPairDatasets:
    def test_filter_dataset_mixture(self):
        dataset = filter_pair_dataset(read_length=100, threshold=5, pairs=50)
        assert len(dataset.pairs) == 50
        assert any(e <= 5 for e in dataset.injected_edits)  # similar bucket
        assert any(e > 15 for e in dataset.injected_edits)  # dissimilar bucket

    def test_filter_dataset_deterministic(self):
        a = filter_pair_dataset(read_length=100, threshold=5, pairs=10, seed=1)
        b = filter_pair_dataset(read_length=100, threshold=5, pairs=10, seed=1)
        assert a.pairs == b.pairs

    def test_edlib_dataset_similarity_sweep(self):
        dataset = edlib_pair_dataset(length=2_000, similarities=(0.6, 0.9, 0.99))
        assert len(dataset.pairs) == 3
        # More divergence -> more injected edits.
        assert dataset.injected_edits[0] > dataset.injected_edits[1]
        assert dataset.injected_edits[1] > dataset.injected_edits[2]
