"""Unit tests for the evaluation metrics."""

import pytest

from repro.eval.metrics import (
    filter_accuracy,
    power_reduction,
    score_accuracy,
    speedup,
)


class TestFilterAccuracy:
    def test_confusion_partition(self):
        decisions = [True, True, False, False]
        truths = [3, 10, 3, 10]  # threshold 5: similar, dissimilar, ...
        accuracy = filter_accuracy(decisions, truths, threshold=5)
        assert accuracy.true_accepts == 1
        assert accuracy.false_accepts == 1
        assert accuracy.false_rejects == 1
        assert accuracy.true_rejects == 1
        assert accuracy.total == 4

    def test_rates(self):
        accuracy = filter_accuracy(
            [True, True, True, False], [1, 2, 100, 100], threshold=5
        )
        assert accuracy.false_accept_rate == pytest.approx(0.5)
        assert accuracy.false_reject_rate == 0.0

    def test_degenerate_rates(self):
        accuracy = filter_accuracy([True], [0], threshold=5)
        assert accuracy.false_accept_rate == 0.0
        assert accuracy.false_reject_rate == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            filter_accuracy([True], [1, 2], threshold=5)


class TestScoreAccuracy:
    def test_exact_and_tolerance(self):
        accuracy = score_accuracy([100, 99, 50], [100, 100, 100], tolerance=0.02)
        assert accuracy.exact == 1
        assert accuracy.within_tolerance == 2  # 99 within 2% of 100
        assert accuracy.exact_fraction == pytest.approx(1 / 3)

    def test_negative_scores(self):
        accuracy = score_accuracy([-100, -104], [-100, -100], tolerance=0.045)
        assert accuracy.exact == 1
        assert accuracy.within_tolerance == 2

    def test_empty(self):
        accuracy = score_accuracy([], [])
        assert accuracy.exact_fraction == 0.0


class TestRatios:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_power_reduction(self):
        assert power_reduction(100.0, 4.0) == 25.0
        with pytest.raises(ValueError):
            power_reduction(1.0, 0.0)
