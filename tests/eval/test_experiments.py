"""Smoke + invariant tests for the per-figure experiment drivers."""

from repro.eval.experiments import (
    experiment_ablation,
    experiment_accuracy,
    experiment_asap,
    experiment_fig9,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_gasal2,
    experiment_prefilter,
    experiment_sillax,
    experiment_table1,
)


class TestTable1:
    def test_totals_row_present(self):
        headers, rows = experiment_table1()
        assert len(headers) == 3
        totals = [r for r in rows if str(r[0]).startswith("Total - 1 vault")]
        assert totals and totals[0][1] == 0.334


class TestThroughputFigures:
    def test_fig9_reproduces_anchor_speedups(self):
        _, rows = experiment_fig9()
        by_name = {row[0]: row for row in rows}
        assert by_name["PacBio - 15%"][6] == 648  # vs BWA-MEM 12t
        assert by_name["PacBio - 15%"][7] == 116  # vs Minimap2 12t

    def test_fig10_reproduces_anchor_speedups(self):
        _, rows = experiment_fig10()
        by_name = {row[0]: row for row in rows}
        assert by_name["Illumina-150bp"][6] == 111
        assert by_name["Illumina-150bp"][7] == 158

    def test_fig11_speedups_in_paper_band(self):
        _, rows = experiment_fig11()
        by_name = {row[0]: row for row in rows}
        # Paper: 6.5x/3.4x for PacBio-15%; Amdahl reproduction within 10%.
        assert abs(by_name["PacBio - 15%"][2] - 6.5) < 0.7
        assert abs(by_name["PacBio - 15%"][4] - 3.4) < 0.4

    def test_fig12_average_ratio(self):
        _, rows = experiment_fig12()
        avg = [r for r in rows if r[0] == "Average"][0]
        assert 3.0 < avg[3] < 4.5  # paper: 3.9x

    def test_fig13_average_ratio(self):
        _, rows = experiment_fig13()
        avg = [r for r in rows if r[0] == "Average"][0]
        assert 3.0 < avg[3] < 10.0  # paper: 7.4x

    def test_gasal2_table_shape(self):
        _, rows = experiment_gasal2()
        assert len(rows) == 9
        assert all(row[3] > 5 for row in rows)  # all speedups substantial

    def test_sillax_ratio(self):
        _, rows = experiment_sillax()
        assert 1.7 < rows[1][2] < 2.2


class TestAccuracyAndFiltering:
    def test_accuracy_reproduces_high_match(self):
        _, rows = experiment_accuracy(short_reads=6, long_reads=1, long_read_length=400)
        for row in rows:
            within = float(str(row[3]).rstrip("%"))
            assert within >= 90.0  # paper: 99.6-99.7%

    def test_prefilter_genasm_beats_shouji(self):
        _, rows = experiment_prefilter(pairs=40)
        for row in rows:
            genasm_fa = float(str(row[1]).rstrip("%"))
            shouji_fa = float(str(row[3]).rstrip("%"))
            genasm_fr = float(str(row[2]).rstrip("%"))
            assert genasm_fa <= shouji_fa
            assert genasm_fr == 0.0


class TestEditDistance:
    def test_fig14_model_rows_match_paper_ranges(self):
        _, rows = experiment_fig14(measured_length=400)
        model_100k = [r for r in rows if r[0] == "model 100Kbp"]
        speedups = [r[4] for r in model_100k]
        assert max(speedups) > 300
        assert min(speedups) > 10

    def test_fig14_measured_growth_factors_present(self):
        _, rows = experiment_fig14(measured_length=1_500, similarities=(0.9,))
        measured = [r for r in rows if str(r[0]).startswith("measured growth")]
        assert measured
        assert "Myers" in str(measured[0][2])
        assert "GenASM" in str(measured[0][3])

    def test_asap_speedups_positive(self):
        _, rows = experiment_asap()
        assert all(row[3] > 1 for row in rows)


class TestAblation:
    def test_dc_long_read_speedup_large(self):
        _, rows = experiment_ablation()
        long_row = [r for r in rows if "long 10Kbp" in str(r[0])][0]
        assert long_row[3] > 1_000

    def test_vault_scaling_factor(self):
        _, rows = experiment_ablation()
        vault_row = [r for r in rows if str(r[0]).startswith("Vaults")][0]
        assert vault_row[3] == 32
