"""Fault-injection suite for hedged requests.

Hedging is a duplicate-and-race construct, so its correctness claims are
exactly the ones worth attacking: the hedge must *win* against a wedged
replica (the whole point), a request must still be answered exactly once
(never two surfaced answers, never a late loser corrupting a later
request), and the losing side's queued work must be cancelled rather
than computed. Every test injects the fault through the same scriptable
engine double the cluster fault suite uses.
"""

import asyncio
import threading
import time
from collections import deque

import pytest

from repro.engine import PurePythonEngine
from repro.serving import AlignmentCluster, AlignmentServer


def run(coro):
    return asyncio.run(coro)


class ScriptableEngine(PurePythonEngine):
    """Engine double with scriptable per-call latency, errors, and hangs."""

    def __init__(self, *, delay=0.0, fail_always=None):
        self.delay = delay
        self.fail_always = fail_always
        self.failures = deque()
        self.hang: threading.Event | None = None
        self.calls: list[tuple[str, list]] = []
        self._lock = threading.Lock()

    def _behave(self, kind, payloads):
        with self._lock:
            self.calls.append((kind, list(payloads)))
            scripted = self.failures.popleft() if self.failures else None
        if self.hang is not None:
            assert self.hang.wait(timeout=10.0), "test forgot to release hang"
        if self.delay:
            time.sleep(self.delay)
        if scripted is not None:
            raise scripted
        if self.fail_always is not None:
            raise self.fail_always

    def scan_batch(self, pairs, k, **kwargs):
        self._behave("scan", pairs)
        return super().scan_batch(pairs, k, **kwargs)

    def served_pairs(self):
        with self._lock:
            return [pair for _, payloads in self.calls for pair in payloads]


def make_cluster(engines, **kwargs):
    kwargs.setdefault("policy", "round_robin")
    kwargs.setdefault("batch_size", 1)
    kwargs.setdefault("flush_interval", 0.001)
    kwargs.setdefault("hedge", True)
    kwargs.setdefault("max_hedge_delay", 0.05)
    return AlignmentCluster(
        replicas=len(engines),
        engine_factory=lambda i: engines[i],
        **kwargs,
    )


class TestHedgeWins:
    def test_hedge_beats_a_hanging_replica(self):
        """A request stuck on a wedged replica is answered by its hedge
        within ~the hedge delay, not the wedge's duration."""

        async def main():
            hung = ScriptableEngine()
            hung.hang = threading.Event()
            healthy = ScriptableEngine()
            reference = PurePythonEngine().scan_batch([("ACGTACGT", "ACGT")], 1)[0]
            async with make_cluster([hung, healthy]) as cluster:
                started = time.monotonic()
                result = await cluster.scan("ACGTACGT", "ACGT", 1)
                elapsed = time.monotonic() - started
                hung.hang.set()  # release the wedge for clean teardown
                assert result == reference
                assert elapsed < 1.0  # hedge delay + slack, not the 10s wedge
                assert cluster.hedges == 1
                assert cluster.hedge_wins == 1
                assert healthy.served_pairs() == [("ACGTACGT", "ACGT")]

        run(main())

    def test_fast_primary_never_hedges(self):
        async def main():
            engines = [ScriptableEngine(), ScriptableEngine()]
            async with make_cluster(engines, max_hedge_delay=5.0) as cluster:
                for _ in range(10):
                    await cluster.scan("ACGTACGT", "ACGT", 1)
                assert cluster.hedges == 0
                assert cluster.hedge_wins == 0

        run(main())

    def test_hedge_failure_leaves_primary_authoritative(self):
        """A hedge landing on a *broken* replica must not poison the
        primary's (slow but correct) answer."""

        async def main():
            slow = ScriptableEngine(delay=0.15)
            broken = ScriptableEngine(fail_always=RuntimeError("boom"))
            reference = PurePythonEngine().scan_batch([("ACGTACGT", "ACGT")], 1)[0]
            async with make_cluster(
                [slow, broken], max_attempts=1, max_hedge_delay=0.02
            ) as cluster:
                result = await cluster.scan("ACGTACGT", "ACGT", 1)
                assert result == reference
                assert cluster.hedges == 1
                assert cluster.hedge_wins == 0
                assert broken.calls  # the hedge really was dispatched

        run(main())

    def test_single_replica_cluster_never_hedges(self):
        async def main():
            engine = ScriptableEngine(delay=0.05)
            async with make_cluster([engine], max_hedge_delay=0.001) as cluster:
                await cluster.scan("ACGTACGT", "ACGT", 1)
                assert cluster.hedges == 0

        run(main())


class TestExactlyOnce:
    def test_duplicate_answers_never_surface_twice(self):
        """Under a degraded replica with hedging on, every request gets
        exactly one answer and they are all correct."""

        async def main():
            slow = ScriptableEngine(delay=0.08)
            fast = ScriptableEngine()
            texts = [
                "".join("ACGT"[(i + j) % 4] for j in range(12)) + "ACGT"
                for i in range(12)
            ]
            reference = {
                text: PurePythonEngine().scan_batch([(text, "ACGT")], 1)[0]
                for text in texts
            }
            async with make_cluster(
                [slow, fast], max_hedge_delay=0.02
            ) as cluster:
                results = await asyncio.gather(
                    *(cluster.scan(text, "ACGT", 1) for text in texts)
                )
                assert len(results) == len(texts)
                for text, result in zip(texts, results):
                    assert result == reference[text]
                # Some requests were duplicated at the *engine* level —
                # that is the mechanism working, and the only place
                # duplication is allowed to exist.
                assert cluster.hedges > 0
                merged = cluster.stats
                assert merged.requests >= len(texts)

        run(main())

    def test_late_loser_result_is_discarded(self):
        """When the wedged primary finally answers (long after its hedge
        won), the late result is dropped: later distinct requests still
        get their own correct answers."""

        async def main():
            hung = ScriptableEngine()
            hung.hang = threading.Event()
            healthy = ScriptableEngine()
            async with make_cluster([hung, healthy]) as cluster:
                first = await cluster.scan("ACGTACGTACGT", "ACGT", 1)
                hung.hang.set()  # wedge releases *after* the hedge won
                hung.hang = None
                await asyncio.sleep(0.05)  # let the stale dispatch finish
                second = await cluster.scan("TTTTACGTTTTT", "ACGT", 1)
                assert first != second  # distinct payloads, distinct answers
                assert second == PurePythonEngine().scan_batch(
                    [("TTTTACGTTTTT", "ACGT")], 1
                )[0]

        run(main())


class TestCancellation:
    def test_losing_primary_queued_work_is_dropped(self):
        """A hedge win cancels the primary's queued entry before its
        replica flushes it — the wedged replica's backlog must not grow
        by one engine call per hedged request."""

        async def main():
            hung_engine = ScriptableEngine()
            hung_engine.hang = threading.Event()
            # Big batch + long flush: requests sit *queued* on the slow
            # server while the first (wedged) call blocks its worker.
            slow_server = AlignmentServer(
                engine=hung_engine, batch_size=64, flush_interval=10.0
            )
            fast_server = AlignmentServer(
                engine=ScriptableEngine(), batch_size=1, flush_interval=0.001
            )
            cluster = AlignmentCluster(
                servers=[slow_server, fast_server],
                policy="round_robin",
                hedge=True,
                max_hedge_delay=0.02,
            )
            async with cluster:
                texts = [
                    "".join("ACGT"[(i + j) % 4] for j in range(12)) + "ACGT"
                    for i in range(8)
                ]
                results = await asyncio.gather(
                    *(cluster.scan(text, "ACGT", 1) for text in texts)
                )
                assert len(results) == len(texts)
                hung_engine.hang.set()
                await slow_server.stop()  # final flush of whatever queued
                # Every queued entry whose hedge won was dropped at flush
                # time instead of computed.
                assert slow_server.stats.cancelled > 0
                served_there = hung_engine.served_pairs()
                assert len(served_there) < len(texts)

        run(main())

    def test_caller_cancellation_reaps_both_attempts(self):
        """Cancelling the caller's task mid-hedge cancels primary and
        hedge; the cluster keeps serving afterwards."""

        async def main():
            slow_a = ScriptableEngine(delay=0.2)
            slow_b = ScriptableEngine(delay=0.2)
            async with make_cluster(
                [slow_a, slow_b], max_hedge_delay=0.01
            ) as cluster:
                task = asyncio.ensure_future(
                    cluster.scan("ACGTACGTACGT", "ACGT", 1)
                )
                await asyncio.sleep(0.05)  # primary dispatched, hedge fired
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # Still healthy: a fresh request completes normally.
                result = await cluster.scan("ACGTACGTACGT", "ACGT", 1)
                assert result

        run(main())


class TestHedgingStats:
    def test_stats_payload_has_hedging_block(self):
        async def main():
            hung = ScriptableEngine()
            hung.hang = threading.Event()
            async with make_cluster([hung, ScriptableEngine()]) as cluster:
                await cluster.scan("ACGTACGT", "ACGT", 1)
                hung.hang.set()
                payload = cluster.stats_payload()
                block = payload["hedging"]
                assert block["enabled"] is True
                assert block["quantile"] == 0.99
                assert block["hedges"] == 1
                assert block["hedge_wins"] == 1
                assert block["delay_ms"] >= 0.0
                assert payload["cluster"]["hedges"] == 1

        run(main())

    def test_no_hedging_block_when_disabled(self):
        async def main():
            async with make_cluster(
                [ScriptableEngine(), ScriptableEngine()], hedge=False
            ) as cluster:
                await cluster.scan("ACGTACGT", "ACGT", 1)
                assert "hedging" not in cluster.stats_payload()

        run(main())

    def test_hedge_delay_tracks_fastest_replica_p99(self):
        async def main():
            async with make_cluster(
                [ScriptableEngine(), ScriptableEngine(delay=0.2)],
                min_hedge_delay=0.0001,
                max_hedge_delay=10.0,
            ) as cluster:
                assert cluster.hedge_delay() == 10.0  # no data yet: max
                for _ in range(8):
                    await cluster.scan("ACGTACGT", "ACGT", 1)
                delay = cluster.hedge_delay()
                # The *fast* replica's p99 governs, not the degraded one's.
                assert delay < 0.2

        run(main())

    def test_hedge_knob_validation(self):
        with pytest.raises(ValueError):
            AlignmentCluster(engine="pure", hedge_quantile=0.0)
        with pytest.raises(ValueError):
            AlignmentCluster(engine="pure", min_hedge_delay=-1.0)
        with pytest.raises(ValueError):
            AlignmentCluster(
                engine="pure", min_hedge_delay=0.5, max_hedge_delay=0.1
            )
