"""Unit and Hypothesis property tests for the QoS building blocks.

The token bucket and the deficit-round-robin queue are the two
mechanisms every isolation guarantee in this layer rests on, so they get
property suites, not just examples: Hypothesis picks the arrival
pattern / the backlog mix, and the tests assert the invariants the rest
of the stack assumes — admitted volume never exceeds ``rate * t +
burst``, long-run shares converge to configured weights, and no
backlogged lane is starved past one full round.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving import (
    DEFAULT_TENANT,
    AdmissionError,
    FairQueue,
    FifoQueue,
    QosPolicy,
    TenantConfig,
    TokenBucket,
)


class FakeClock:
    """Deterministic injectable monotonic clock."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        assert seconds >= 0
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.tokens == 3.0
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refills_at_rate_and_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        clock.advance(1.0)  # +2 tokens
        assert bucket.tokens == pytest.approx(2.0)
        clock.advance(100.0)  # refills cap at burst, not rate * t
        assert bucket.tokens == pytest.approx(4.0)

    def test_retry_after_is_exact_refill_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1, clock=clock)
        assert bucket.try_acquire()
        # 1 missing token at 0.5 tokens/s -> 2 s.
        assert bucket.retry_after() == pytest.approx(2.0)
        clock.advance(1.0)
        assert bucket.retry_after() == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.retry_after() == 0.0
        assert bucket.try_acquire()

    def test_failed_acquire_leaves_bucket_untouched(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire(2.0)
        before = bucket.tokens
        assert not bucket.try_acquire()
        assert bucket.tokens == before

    def test_clock_going_backwards_is_ignored(self):
        clock = FakeClock(start=10.0)
        bucket = TokenBucket(rate=1.0, burst=5, clock=clock)
        assert bucket.try_acquire()
        clock.now = 3.0  # suspend/resume weirdness must not mint tokens
        assert bucket.tokens == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)

    @settings(max_examples=200, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=100.0),
        burst=st.floats(min_value=1.0, max_value=50.0),
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),  # gap before
                st.integers(min_value=1, max_value=10),  # attempts at once
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_admitted_never_exceeds_rate_t_plus_burst(
        self, rate, burst, arrivals
    ):
        """The defining bucket property, for *any* arrival pattern."""
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        admitted = 0
        for gap, attempts in arrivals:
            clock.advance(gap)
            for _ in range(attempts):
                if bucket.try_acquire():
                    admitted += 1
        bound = rate * clock.now + burst
        assert admitted <= bound + 1e-6

    @settings(max_examples=100, deadline=None)
    @given(
        rate=st.floats(min_value=0.1, max_value=50.0),
        burst=st.floats(min_value=1.0, max_value=20.0),
        drained=st.integers(min_value=1, max_value=25),
    )
    def test_retry_after_is_sufficient(self, rate, burst, drained):
        """Waiting exactly ``retry_after`` always makes the next request
        admissible — the 429 hint is honest, never optimistic."""
        clock = FakeClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        for _ in range(drained):
            bucket.try_acquire()
        wait = bucket.retry_after()
        clock.advance(wait + 1e-9)
        assert bucket.try_acquire()


# ----------------------------------------------------------------------
# FairQueue (deficit round-robin)
# ----------------------------------------------------------------------
class TestFairQueue:
    def test_fifo_within_one_tenant(self):
        queue = FairQueue()
        for i in range(5):
            queue.push(i, tenant="a")
        assert queue.take(10) == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_equal_weights_interleave_tenants(self):
        queue = FairQueue()
        for i in range(4):
            queue.push(("a", i), tenant="a")
        for i in range(4):
            queue.push(("b", i), tenant="b")
        batch = queue.take(8)
        # One request per lane per round: strict a/b alternation.
        assert batch == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1),
            ("a", 2), ("b", 2), ("a", 3), ("b", 3),
        ]

    def test_weights_set_the_drain_ratio(self):
        queue = FairQueue(weight_of={"heavy": 3.0, "light": 1.0}.get)
        for i in range(30):
            queue.push(("heavy", i), tenant="heavy")
        for i in range(30):
            queue.push(("light", i), tenant="light")
        batch = queue.take(24)
        heavy = sum(1 for tenant, _ in batch if tenant == "heavy")
        light = len(batch) - heavy
        assert heavy == 18 and light == 6  # exactly 3:1 while backlogged

    def test_interactive_class_jumps_own_lane_only(self):
        queue = FairQueue()
        queue.push(("a", "bulk"), tenant="a", interactive=False)
        queue.push(("b", "bulk"), tenant="b", interactive=False)
        queue.push(("a", "scan"), tenant="a", interactive=True)
        batch = queue.take(3)
        # a's scan overtakes a's bulk but not b's turn in the rotation.
        assert batch.index(("a", "scan")) < batch.index(("a", "bulk"))
        assert batch.index(("b", "bulk")) == 1

    def test_take_is_work_conserving(self):
        queue = FairQueue(weight_of=lambda name: 0.5)
        for i in range(7):
            queue.push(i, tenant=f"t{i}")
        assert len(queue.take(100)) == 7

    def test_limit_hit_mid_lane_resumes_there(self):
        queue = FairQueue(quantum=4.0)
        for i in range(4):
            queue.push(("a", i), tenant="a")
        for i in range(4):
            queue.push(("b", i), tenant="b")
        first = queue.take(2)
        assert first == [("a", 0), ("a", 1)]  # a's credit covers both
        second = queue.take(6)
        assert second[:2] == [("a", 2), ("a", 3)]

    def test_emptied_lane_forfeits_credit(self):
        queue = FairQueue(quantum=10.0)
        queue.push("x", tenant="a")
        assert queue.take(4) == ["x"]
        # The take left 9 unused credit; standard DRR zeroes it when the
        # lane empties, so idle time cannot be banked into a later burst.
        assert queue._lanes["a"].deficit == 0.0

    def test_depths_reports_backlog(self):
        queue = FairQueue()
        queue.push(1, tenant="a")
        queue.push(2, tenant="a")
        queue.push(3, tenant="b")
        assert queue.depths() == {"a": 2, "b": 1}
        queue.take(3)
        assert queue.depths() == {}

    def test_fifo_queue_shares_the_surface(self):
        queue = FifoQueue()
        queue.push(1, tenant="x", interactive=True)
        queue.push(2, tenant="y")
        assert len(queue) == 2
        assert queue.depths() == {DEFAULT_TENANT: 2}
        assert queue.take(5) == [1, 2]

    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            FairQueue(quantum=0.0)

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0.25, max_value=8.0),
            min_size=2,
            max_size=4,
        ),
        batch=st.integers(min_value=1, max_value=16),
    )
    def test_shares_converge_to_weights(self, weights, batch):
        """With every lane permanently backlogged, the drained share of
        each tenant converges to ``weight / sum(weights)``."""
        queue = FairQueue(weight_of=lambda name: weights[name])
        backlog = 400
        for name in weights:
            for i in range(backlog):
                queue.push((name, i), tenant=name)
        served = {name: 0 for name in weights}
        drained = 0
        # Stop while every lane is still backlogged, so the shares are
        # measured under sustained contention, not during drain-out: the
        # heaviest lane drains fastest, at ~max_weight / total of the
        # taken requests, so cap total drain where that lane still holds
        # ~10% of its backlog.
        total_weight = sum(weights.values())
        target = int(0.9 * backlog * total_weight / max(weights.values()))
        while drained < target:
            for item in queue.take(batch):
                served[item[0]] += 1
                drained += 1
        for name, weight in weights.items():
            share = served[name] / drained
            expected = weight / total_weight
            # DRR quantization error is bounded per round; over ~hundreds
            # of requests the share sits within a few percent.
            assert share == pytest.approx(expected, abs=0.05)

    @settings(max_examples=60, deadline=None)
    @given(
        backlogs=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.integers(min_value=1, max_value=50),
            min_size=2,
            max_size=5,
        ),
        weights=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.floats(min_value=1.0, max_value=10.0),
            min_size=0,
            max_size=5,
        ),
    )
    def test_no_starvation_within_one_round(self, backlogs, weights):
        """With weights >= 1, every backlogged lane is served within one
        full rotation: a single take of ``len(lanes)`` requests touches
        every tenant."""
        queue = FairQueue(weight_of=lambda name: weights.get(name, 1.0))
        for name, depth in backlogs.items():
            for i in range(depth):
                queue.push((name, i), tenant=name)
        # One full rotation serves each lane at most int(weight) + 1
        # requests (deficit after a top-up is strictly below weight + 1),
        # so a take of that total must have visited — and served — every
        # backlogged lane at least once.
        one_round = sum(
            int(weights.get(name, 1.0)) + 1 for name in backlogs
        )
        batch = queue.take(one_round)
        assert {item[0] for item in batch} == set(backlogs)

    @settings(max_examples=40, deadline=None)
    @given(
        pushes=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.booleans(),
            ),
            min_size=0,
            max_size=60,
        ),
        takes=st.lists(st.integers(min_value=0, max_value=10), max_size=20),
    )
    def test_conservation_under_any_interleaving(self, pushes, takes):
        """Nothing is lost or duplicated across arbitrary push/take mixes."""
        queue = FairQueue()
        out = []
        for index, (tenant, interactive) in enumerate(pushes):
            queue.push(index, tenant=tenant, interactive=interactive)
            for limit in takes:
                before = len(queue)
                got = queue.take(limit)
                assert len(got) == min(limit, before)
                out.extend(got)
        out.extend(queue.take(len(queue)))
        assert sorted(out) == list(range(len(pushes)))


# ----------------------------------------------------------------------
# QosPolicy
# ----------------------------------------------------------------------
class TestQosPolicy:
    def make(self, clock=None):
        return QosPolicy(
            [
                TenantConfig("acme", rate=2.0, burst=3, weight=2.0),
                TenantConfig("beta", rate=1.0, burst=1, weight=1.0),
            ],
            clock=clock if clock is not None else FakeClock(),
        )

    def test_resolve_known_unknown_and_missing_keys(self):
        policy = self.make()
        assert policy.resolve("acme").name == "acme"
        assert policy.resolve(None).name == DEFAULT_TENANT
        assert policy.resolve("").name == DEFAULT_TENANT
        # Unknown keys share the default bucket — rotation buys nothing.
        rotated = policy.resolve("made-up-key-1")
        assert rotated is policy.resolve("made-up-key-2")
        assert rotated.name == DEFAULT_TENANT

    def test_admit_charges_and_raises_with_refill_hint(self):
        clock = FakeClock()
        policy = self.make(clock)
        beta = policy.resolve("beta")
        policy.admit(beta)  # burst 1
        with pytest.raises(AdmissionError) as excinfo:
            policy.admit(beta)
        assert excinfo.value.tenant == "beta"
        assert excinfo.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        policy.admit(beta)  # refilled

    def test_tenants_are_isolated_buckets(self):
        policy = self.make()
        beta = policy.resolve("beta")
        acme = policy.resolve("acme")
        policy.admit(beta)
        with pytest.raises(AdmissionError):
            policy.admit(beta)
        policy.admit(acme)  # unaffected

    def test_weight_of_falls_back_to_default(self):
        policy = self.make()
        assert policy.weight_of("acme") == 2.0
        assert policy.weight_of("nope") == 1.0

    def test_duplicate_and_colliding_tenants_rejected(self):
        with pytest.raises(ValueError):
            QosPolicy([TenantConfig("a"), TenantConfig("a")])
        with pytest.raises(ValueError):
            QosPolicy([TenantConfig(DEFAULT_TENANT)])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TenantConfig("")
        with pytest.raises(ValueError):
            TenantConfig("x", rate=0)
        with pytest.raises(ValueError):
            TenantConfig("x", burst=0)
        with pytest.raises(ValueError):
            TenantConfig("x", weight=0)

    def test_stats_payload_counts_outcomes(self):
        policy = self.make()
        acme = policy.resolve("acme")
        policy.record(acme, 200, 0.01)
        policy.record(acme, 429, 0.0)
        policy.record(acme, 503, 0.0)
        policy.record(acme, 504, 0.0)
        policy.record(acme, 500, 0.0)
        block = policy.stats_payload()["acme"]
        assert block["requests"] == 5
        assert block["ok"] == 1
        assert block["throttled"] == 1
        assert block["shed"] == 1
        assert block["expired"] == 1
        assert block["errors"] == 1
        assert block["weight"] == 2.0
        assert block["latency"]["count"] == 1

    def test_infinite_rate_is_json_safe_and_never_throttles(self):
        policy = QosPolicy(
            [
                TenantConfig(
                    "unlimited", rate=math.inf, burst=math.inf, weight=1.0
                )
            ],
            clock=FakeClock(),
        )
        unlimited = policy.resolve("unlimited")
        for _ in range(1000):
            policy.admit(unlimited)
        block = policy.stats_payload()["unlimited"]
        assert block["rate"] is None and block["burst"] is None

    def test_collect_metrics_labels_every_tenant(self):
        policy = self.make()
        policy.record(policy.resolve("acme"), 200, 0.01)
        families = {f.name: f for f in policy.collect_metrics()}
        assert set(families) == {
            "genasm_qos_requests_total",
            "genasm_qos_tokens_available",
            "genasm_qos_request_latency_seconds",
        }
        labeled = {
            labels.get("tenant")
            for family in families.values()
            for labels, _value in family.samples
        }
        assert {"acme", "beta", DEFAULT_TENANT} <= labeled
