"""Behavioral tests for the replicated cluster router: construction,
per-replica engine isolation, routing policies, stats aggregation,
draining, and lifecycle. Fault injection lives in
``test_cluster_faults.py``."""

import asyncio
import time

import pytest

from repro.engine import PurePythonEngine, create_engine, get_engine
from repro.serving import (
    AlignmentCluster,
    AlignmentServer,
    RoutingPolicy,
    ServerClosedError,
    make_policy,
    register_policy,
)
from repro.serving.cluster import ROUTING_POLICIES

PAIRS = [
    ("ACGTACGTAC", "ACGTTCGTAC"),
    ("GGGGCCCCAA", "GGGGCCCAA"),
    ("TTTTTTTTTT", "TTTTATTTTT"),
    ("ACACACACAC", "CACACACACA"),
]


def run(coro):
    return asyncio.run(coro)


def expected(text, pattern, k):
    return PurePythonEngine().edit_distance_batch([(text, pattern)], k)[0]


class TestEngineConstructionHooks:
    def test_create_engine_returns_fresh_instances(self):
        first = create_engine("pure")
        second = create_engine("pure")
        assert isinstance(first, PurePythonEngine)
        assert first is not second
        # get_engine still memoizes its singleton, untouched by create.
        assert get_engine("pure") is get_engine("pure")
        assert get_engine("pure") is not first

    def test_create_engine_passes_instance_through(self):
        engine = PurePythonEngine()
        assert create_engine(engine) is engine
        with pytest.raises(ValueError):
            create_engine(engine, bogus_kwarg=1)

    def test_cluster_builds_one_engine_per_replica(self):
        cluster = AlignmentCluster(replicas=3, engine="pure")
        engines = [r.server.engine for r in cluster.replicas]
        assert len({id(e) for e in engines}) == 3
        run(cluster.stop())

    def test_engine_factory_builds_heterogeneous_replicas(self):
        seen = []

        def factory(index):
            engine = PurePythonEngine()
            seen.append((index, engine))
            return engine

        cluster = AlignmentCluster(replicas=2, engine_factory=factory)
        assert [i for i, _ in seen] == [0, 1]
        assert [r.server.engine for r in cluster.replicas] == [
            e for _, e in seen
        ]
        run(cluster.stop())

    def test_mapper_cluster_still_gets_private_engines(self):
        from repro.mapping.pipeline import make_genasm_mapper
        from repro.sequences.genome import synthesize_genome

        genome = synthesize_genome(length=600, seed=3)
        mapper = make_genasm_mapper(genome, engine="pure")
        assert not isinstance(mapper.engine, PurePythonEngine)  # spec, not instance
        cluster = AlignmentCluster(replicas=3, mapper=mapper)
        engines = [r.server.engine for r in cluster.replicas]
        # The mapper's *name* spec resolves to a fresh instance per
        # replica, never a singleton shared across worker threads.
        assert len({id(e) for e in engines}) == 3
        assert all(isinstance(e, PurePythonEngine) for e in engines)
        # The mapper itself is rebuilt per replica over that private
        # engine (same genome/index, no shared compute state).
        mappers = [r.server.mapper for r in cluster.replicas]
        assert len({id(m) for m in mappers}) == 3
        assert all(m is not mapper for m in mappers)
        assert all(m.engine is e for m, e in zip(mappers, engines))
        assert all(m.genome is mapper.genome for m in mappers)
        run(cluster.stop())

    def test_map_read_routes_only_to_mapper_replicas(self):
        from repro.mapping.pipeline import make_genasm_mapper
        from repro.sequences.genome import synthesize_genome
        from repro.sequences.read_simulator import illumina_profile, simulate_reads

        genome = synthesize_genome(length=800, seed=5)
        mapper = make_genasm_mapper(genome, engine="pure")
        mapped_server = AlignmentServer(
            mapper=mapper, batch_size=1, flush_interval=0.001
        )
        bare_server = AlignmentServer(
            engine="pure", batch_size=1, flush_interval=0.001
        )

        async def main():
            async with AlignmentCluster(
                servers=[bare_server, mapped_server], policy="round_robin"
            ) as cluster:
                reads = simulate_reads(
                    genome,
                    count=4,
                    read_length=60,
                    profile=illumina_profile(),
                    seed=7,
                )
                results = [
                    await cluster.map_read(read.name, read.sequence)
                    for read in reads
                ]
                return cluster, results

        cluster, results = run(main())
        # Every map request landed on the mapper-bearing replica; the bare
        # replica was never blamed (no failure cooldown from misrouting).
        assert all(r.record.is_mapped for r in results)
        assert cluster.replicas[1].completed == 4
        assert cluster.replicas[0].dispatched == 0
        assert cluster.replicas[0].failed == 0

    def test_prebuilt_servers_reject_construction_knobs(self):
        servers = [AlignmentServer(engine="pure")]
        with pytest.raises(ValueError):
            AlignmentCluster(servers=servers, engine="pure")
        with pytest.raises(ValueError):
            AlignmentCluster(servers=servers, batch_size=4)
        with pytest.raises(ValueError):
            AlignmentCluster(servers=[])
        run(servers[0].stop())

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            AlignmentCluster(replicas=0)
        with pytest.raises(ValueError):
            AlignmentCluster(
                replicas=2, engine="pure", engine_factory=lambda i: None
            )
        # An engine *instance* would be shared by every replica's worker
        # thread — rejected outright, not silently raced.
        with pytest.raises(ValueError, match="engine_factory"):
            AlignmentCluster(replicas=2, engine=PurePythonEngine())

    def test_bad_input_is_not_a_replica_failure(self):
        async def main():
            async with AlignmentCluster(
                replicas=2, engine="pure", batch_size=1, flush_interval=0.001
            ) as cluster:
                with pytest.raises(ValueError):
                    await cluster.scan("ACGT", "AXGT", 1)  # X not in DNA
                assert await cluster.edit_distance("ACGTACGT", "ACGGT", 3) == 1
                return cluster.retries, [
                    (r.failed, r.state) for r in cluster.replicas
                ]

        retries, replica_states = run(main())
        # The poison request surfaced as the client's error: no retry was
        # burned and no replica was cooled down over it.
        assert retries == 0
        assert all(failed == 0 for failed, _ in replica_states)
        assert all(state == "up" for _, state in replica_states)

    def test_map_read_unservable_without_live_mapper_replica(self):
        from repro.mapping.pipeline import make_genasm_mapper
        from repro.sequences.genome import synthesize_genome

        genome = synthesize_genome(length=600, seed=9)
        mapper = make_genasm_mapper(genome, engine="pure")

        async def main():
            mapped = AlignmentServer(mapper=mapper)
            bare = AlignmentServer(engine="pure")
            async with AlignmentCluster(servers=[bare, mapped]) as cluster:
                assert cluster.mapper is not None
                await cluster.drain_replica(1)
                # The only mapper-bearing replica is gone: terminal error,
                # not a 503 that clients would Retry-After forever.
                assert cluster.mapper is None
                with pytest.raises(RuntimeError, match="mapper"):
                    await cluster.map_read("r1", "ACGTACGT")
                # Non-map traffic still flows through the live replica.
                assert await cluster.edit_distance("ACGTACGT", "ACGGT", 3) == 1

        run(main())


class TestRouting:
    @pytest.mark.parametrize(
        "policy", ["round_robin", "least_in_flight", "latency_ewma"]
    )
    def test_results_correct_under_every_policy(self, policy):
        async def main():
            async with AlignmentCluster(
                replicas=3,
                engine="pure",
                policy=policy,
                batch_size=4,
                flush_interval=0.002,
            ) as cluster:
                jobs = [
                    cluster.edit_distance(text, pattern, 4)
                    for text, pattern in PAIRS * 6
                ]
                results = await asyncio.gather(*jobs)
                dispatched = [r.dispatched for r in cluster.replicas]
                return results, dispatched

        results, dispatched = run(main())
        assert results == [expected(t, p, 4) for t, p in PAIRS * 6]
        assert sum(dispatched) == len(PAIRS) * 6
        # Work actually spread: no policy funnels everything to one replica
        # when requests run concurrently against equal replicas.
        assert sum(1 for d in dispatched if d > 0) >= 2

    def test_round_robin_spreads_evenly_when_sequential(self):
        async def main():
            async with AlignmentCluster(
                replicas=2,
                engine="pure",
                policy="round_robin",
                batch_size=1,
                flush_interval=0.001,
            ) as cluster:
                for text, pattern in PAIRS * 3:
                    await cluster.edit_distance(text, pattern, 4)
                return [r.dispatched for r in cluster.replicas]

        dispatched = run(main())
        assert dispatched == [6, 6]

    def test_scan_align_and_map_surface(self):
        async def main():
            async with AlignmentCluster(
                replicas=2, engine="pure", batch_size=2, flush_interval=0.002
            ) as cluster:
                matches = await cluster.scan("ACGTACGT", "ACGT", 1)
                alignment = await cluster.align("ACGTACGT", "ACGGT")
                with pytest.raises(RuntimeError, match="mapper"):
                    await cluster.map_read("r1", "ACGT")
                return matches, alignment

        matches, alignment = run(main())
        assert any(m.distance == 0 for m in matches)
        assert alignment.edit_distance == 1

    def test_latency_ewma_prefers_fast_replica(self):
        class SlowEngine(PurePythonEngine):
            def __init__(self, delay):
                self.delay = delay

            def scan_batch(self, pairs, k, **kwargs):
                time.sleep(self.delay)
                return super().scan_batch(pairs, k, **kwargs)

        async def main():
            engines = [SlowEngine(0.08), PurePythonEngine()]
            async with AlignmentCluster(
                replicas=2,
                engine_factory=lambda i: engines[i],
                policy="latency_ewma",
                batch_size=1,
                flush_interval=0.001,
            ) as cluster:
                # Sequential warm-up gives both replicas one observation...
                for text, pattern in PAIRS[:2]:
                    await cluster.edit_distance(text, pattern, 4)
                warm = [r.dispatched for r in cluster.replicas]
                # ...after which the EWMA keeps traffic off the slow one.
                for text, pattern in PAIRS * 5:
                    await cluster.edit_distance(text, pattern, 4)
                return warm, [r.dispatched for r in cluster.replicas]

        warm, final = run(main())
        assert warm == [1, 1]  # both probed while unmeasured
        assert final[1] - warm[1] == len(PAIRS) * 5  # all later traffic fast
        assert final[0] == warm[0]


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("definitely_not_a_policy")

    def test_policy_instance_passes_through(self):
        policy = make_policy("round_robin")
        assert make_policy(policy) is policy

    def test_register_custom_policy(self):
        class FirstPolicy(RoutingPolicy):
            name = "always_first_test_only"

            def select(self, candidates):
                return candidates[0]

        try:
            register_policy(FirstPolicy)
            assert isinstance(make_policy("always_first_test_only"), FirstPolicy)
        finally:
            ROUTING_POLICIES.pop("always_first_test_only", None)

    def test_abstract_name_rejected(self):
        class Nameless(RoutingPolicy):
            def select(self, candidates):  # pragma: no cover - never called
                return candidates[0]

        with pytest.raises(ValueError):
            register_policy(Nameless)


class TestStatsAndLifecycle:
    def test_cluster_stats_merge_replica_counters(self):
        async def main():
            async with AlignmentCluster(
                replicas=2,
                engine="pure",
                policy="round_robin",
                batch_size=2,
                flush_interval=0.002,
            ) as cluster:
                await asyncio.gather(
                    *(
                        cluster.edit_distance(text, pattern, 4)
                        for text, pattern in PAIRS * 4
                    )
                )
                merged = cluster.stats
                per_replica = [r.server.stats for r in cluster.replicas]
                return merged, per_replica

        merged, per_replica = run(main())
        assert merged.served == sum(s.served for s in per_replica) == 16
        assert merged.flushes == sum(s.flushes for s in per_replica)
        assert merged.latency.count == 16
        assert merged.max_batch == max(s.max_batch for s in per_replica)

    def test_engine_name_formats(self):
        homogeneous = AlignmentCluster(replicas=2, engine="pure")
        assert homogeneous.engine_name == "cluster(2x pure)"
        run(homogeneous.stop())

    def test_stop_rejects_new_requests_and_is_idempotent(self):
        async def main():
            cluster = AlignmentCluster(replicas=2, engine="pure")
            await cluster.stop()
            await cluster.stop()
            with pytest.raises(ServerClosedError):
                await cluster.edit_distance("ACGT", "ACGT", 1)
            assert all(r.state == "stopped" for r in cluster.replicas)
            assert cluster.saturated  # no live capacity left

        run(main())

    def test_drain_replica_removes_it_from_rotation(self):
        async def main():
            async with AlignmentCluster(
                replicas=2,
                engine="pure",
                policy="round_robin",
                batch_size=1,
                flush_interval=0.001,
            ) as cluster:
                await cluster.drain_replica(0)
                await cluster.drain_replica("replica-0")  # idempotent by name
                assert cluster.replicas[0].state == "stopped"
                for text, pattern in PAIRS:
                    await cluster.edit_distance(text, pattern, 4)
                assert cluster.replicas[0].dispatched == 0
                assert cluster.replicas[1].dispatched == len(PAIRS)
                with pytest.raises(KeyError):
                    await cluster.drain_replica("replica-9")

        run(main())

    def test_suggested_retry_after_scales_with_observed_service_time(self):
        server = AlignmentServer(engine="pure", batch_size=4, max_pending=8)
        baseline = server.suggested_retry_after()
        server._observe_service(2.0)
        slow = server.suggested_retry_after()
        assert slow > baseline
        assert slow >= 2.0
        # Clamped to the ceiling however bad the backlog estimate gets.
        server._observe_service(500.0)
        assert server.suggested_retry_after() <= 60.0
