"""Unit + Hypothesis property tests for the mergeable latency histogram,
plus wire tests for the percentile fields it adds to ``/v1/stats``.

The properties pin the contract the cluster's stats aggregation relies
on: fixed shared boundaries make ``merge`` *exactly* the histogram of the
pooled samples (index-wise count addition), counts are exact, quantile
estimates never undershoot the true sample quantile and overshoot by at
most one bucket width, and quantiles are monotone in q.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import AlignmentHTTPServer, AlignmentServer, LatencyHistogram
from repro.serving.cluster import AlignmentCluster
from repro.serving.histogram import GROWTH, LOWEST
from repro.serving.http import open_memory_connection


def build(samples):
    hist = LatencyHistogram()
    for sample in samples:
        hist.record(sample)
    return hist


def true_quantile(samples, q):
    """Nearest-rank sample quantile, ties rounded half up — the same rank
    rule the histogram uses (a float-ceiling here would drift past exact
    products: 0.9 * 10 == 9.000000000000002)."""
    ordered = sorted(samples)
    rank = min(len(ordered), max(1, int(q * len(ordered) + 0.5)))
    return ordered[rank - 1]


# In-range samples: away from the underflow bucket (below LOWEST every
# value collapses to one bucket) and the overflow bucket.
in_range_samples = st.lists(
    st.floats(min_value=2e-5, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=120,
)
quantiles = st.floats(min_value=0.01, max_value=1.0)


class TestUnit:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.mean is None
        assert hist.quantile(0.5) is None
        assert hist.to_dict() == {
            "count": 0,
            "mean_ms": None,
            "max_ms": None,
            "p50_ms": None,
            "p90_ms": None,
            "p99_ms": None,
        }

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-0.001)

    def test_bad_quantile_rejected(self):
        hist = build([0.01])
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                hist.quantile(q)

    def test_exact_fields_are_exact(self):
        samples = [0.001, 0.004, 0.002, 0.100]
        hist = build(samples)
        assert hist.count == 4
        assert hist.total == pytest.approx(sum(samples))
        assert hist.max == 0.100
        assert hist.mean == pytest.approx(sum(samples) / 4)

    def test_single_sample_quantile_is_tight(self):
        hist = build([0.0042])
        estimate = hist.quantile(0.5)
        # Clamped to the observed max: exact for a single sample.
        assert estimate == pytest.approx(0.0042)

    def test_underflow_reported_at_or_below_lowest(self):
        hist = build([1e-7, 1e-6])
        assert hist.quantile(0.99) <= LOWEST

    def test_overflow_reported_as_observed_max(self):
        huge = 5000.0  # beyond the last bucket boundary
        hist = build([huge])
        assert hist.quantile(1.0) == huge

    def test_zero_duration_is_exact(self):
        hist = build([0.0, 0.0])
        assert hist.quantile(1.0) == 0.0

    def test_p90_of_ten_is_the_ninth_sample_not_the_max(self):
        # Regression: 0.9 * 10 == 9.000000000000002 in IEEE floats; a
        # ceiling rank would report the 10 s outlier as p90.
        hist = build([0.001] * 9 + [10.0])
        assert hist.quantile(0.9) < 0.01
        assert hist.quantile(1.0) == 10.0

    def test_merged_classmethod_pools_counts(self):
        a, b, c = build([0.001]), build([0.010]), build([0.100, 0.2])
        pooled = LatencyHistogram.merged([a, b, c])
        assert pooled.count == 4
        assert pooled.bucket_counts() == build(
            [0.001, 0.010, 0.100, 0.2]
        ).bucket_counts()
        # Sources untouched (merged() builds a fresh histogram).
        assert a.count == 1 and b.count == 1 and c.count == 2

    def test_snapshot_is_independent_of_the_source(self):
        hist = build([0.001] * 5)
        snap = hist.snapshot()
        hist.record(0.1)
        assert snap.count == 5
        assert hist.count == 6
        assert snap.quantile(1.0) < 0.01

    def test_since_isolates_the_window(self):
        # The autoscaler's windowed-p99 primitive: a lifetime stream of
        # fast samples must not dilute a slow recent window.
        hist = build([0.001] * 100)
        mark = hist.snapshot()
        for _ in range(20):
            hist.record(0.5)
        window = hist.since(mark)
        assert window.count == 20
        assert window.quantile(0.99) >= 0.5  # lifetime p99 would be ~1ms
        assert hist.quantile(0.5) < 0.01  # source untouched

    def test_since_non_prefix_clamps_to_empty(self):
        small, big = build([0.001]), build([0.001] * 3)
        window = small.since(big)
        assert window.count == 0
        assert window.quantile(0.99) is None


class TestProperties:
    @given(in_range_samples)
    @settings(max_examples=60, deadline=None)
    def test_counts_are_exact(self, samples):
        hist = build(samples)
        assert hist.count == len(samples)
        assert sum(hist.bucket_counts()) == len(samples)

    @given(in_range_samples, quantiles)
    @settings(max_examples=80, deadline=None)
    def test_quantile_brackets_true_quantile_within_one_bucket(
        self, samples, q
    ):
        hist = build(samples)
        estimate = hist.quantile(q)
        true = true_quantile(samples, q)
        assert estimate >= true * (1 - 1e-12)
        assert estimate <= true * GROWTH * (1 + 1e-12)

    @given(in_range_samples)
    @settings(max_examples=60, deadline=None)
    def test_quantiles_monotone_in_q(self, samples):
        hist = build(samples)
        grid = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [hist.quantile(q) for q in grid]
        assert values == sorted(values)

    @given(in_range_samples, in_range_samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_exactly_the_pooled_histogram(self, left, right):
        merged = build(left).merge(build(right))
        pooled = build(left + right)
        assert merged.bucket_counts() == pooled.bucket_counts()
        assert merged.count == len(left) + len(right)
        assert merged.max == pooled.max
        assert merged.total == pytest.approx(pooled.total)

    @given(in_range_samples, in_range_samples, quantiles)
    @settings(max_examples=80, deadline=None)
    def test_merge_quantiles_bracket_pooled_samples(self, left, right, q):
        """The ISSUE's headline property: merge(a, b) quantiles bracket
        the pooled samples within one bucket width."""
        merged = build(left).merge(build(right))
        true = true_quantile(left + right, q)
        estimate = merged.quantile(q)
        assert true * (1 - 1e-12) <= estimate <= true * GROWTH * (1 + 1e-12)


# ----------------------------------------------------------------------
# /v1/stats wire tests for the new percentile fields
# ----------------------------------------------------------------------
class HttpClient:
    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, front):
        return cls(*await open_memory_connection(front))

    async def request(self, method, path, body=None):
        payload = b"" if body is None else json.dumps(body).encode()
        headers = [f"{method} {path} HTTP/1.1", "Host: test"]
        if payload:
            headers.append(f"Content-Length: {len(payload)}")
        self.writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + payload)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split()[1])
        response_headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        raw = await self.reader.readexactly(length) if length else b""
        return status, (json.loads(raw) if raw else None), response_headers

    def close(self):
        self.writer.close()


def assert_percentile_fields(latency, *, expect_counts: bool):
    assert set(latency) == {
        "count", "mean_ms", "max_ms", "p50_ms", "p90_ms", "p99_ms",
    }
    if expect_counts:
        assert latency["count"] > 0
        assert latency["p50_ms"] > 0
        assert latency["p50_ms"] <= latency["p90_ms"] <= latency["p99_ms"]
        assert latency["p99_ms"] <= latency["max_ms"] * (GROWTH + 1e-9)


class TestStatsWire:
    def test_server_stats_report_latency_percentiles(self):
        async def main():
            server = AlignmentServer(
                engine="pure", batch_size=4, flush_interval=0.002
            )
            async with AlignmentHTTPServer(server) as front:
                client = await HttpClient.connect(front)
                for _ in range(6):
                    status, _, _ = await client.request(
                        "POST",
                        "/v1/edit_distance",
                        {"text": "ACGTACGT", "pattern": "ACGGT", "k": 3},
                    )
                    assert status == 200
                status, body, _ = await client.request("GET", "/v1/stats")
                client.close()
                return status, body

        status, body = asyncio.run(main())
        assert status == 200
        # Serving-layer latency (submit -> result) with percentiles.
        serving_latency = body["serving"]["latency"]
        assert serving_latency["count"] == 6
        assert_percentile_fields(serving_latency, expect_counts=True)
        # Per-endpoint HTTP latency percentiles.
        endpoint = body["endpoints"]["/v1/edit_distance"]
        assert endpoint["ok"] == 6
        assert_percentile_fields(endpoint["latency"], expect_counts=True)
        assert endpoint["latency"]["count"] == 6
        # Untouched endpoints expose the same (empty) shape.
        assert_percentile_fields(
            body["endpoints"]["/v1/align"]["latency"], expect_counts=False
        )

    def test_cluster_stats_report_per_replica_percentiles(self):
        async def main():
            cluster = AlignmentCluster(
                replicas=2,
                engine="pure",
                policy="round_robin",
                batch_size=2,
                flush_interval=0.002,
            )
            async with AlignmentHTTPServer(cluster) as front:
                client = await HttpClient.connect(front)
                for _ in range(8):
                    status, _, _ = await client.request(
                        "POST",
                        "/v1/edit_distance",
                        {"text": "ACGTACGT", "pattern": "ACGGT", "k": 3},
                    )
                    assert status == 200
                status, body, _ = await client.request("GET", "/v1/stats")
                health_status, health, _ = await client.request(
                    "GET", "/healthz"
                )
                client.close()
                return status, body, health_status, health

        status, body, health_status, health = asyncio.run(main())
        assert status == 200
        assert body["cluster"]["replicas"] == 2
        assert body["cluster"]["policy"] == "round_robin"
        # Cluster-wide percentiles are the merged replica histograms:
        # counts add exactly.
        per_replica = [r["latency"] for r in body["replicas"]]
        assert all(r["count"] > 0 for r in per_replica)
        assert body["serving"]["latency"]["count"] == sum(
            r["count"] for r in per_replica
        )
        assert_percentile_fields(body["serving"]["latency"], expect_counts=True)
        for latency in per_replica:
            assert_percentile_fields(latency, expect_counts=True)
        # healthz reports per-replica load for the cluster.
        assert health_status == 200
        assert health["status"] == "ok"
        assert [r["state"] for r in health["replicas"]] == ["up", "up"]
