"""Fault-injection suite for the replicated cluster router.

A cluster is only trustworthy if its behavior under *misbehaving*
replicas is proven, so every test here injects a fault through
:class:`ScriptableEngine` — a test double with scriptable per-call
latency, exceptions, and hangs (the hang blocks the replica's worker
thread exactly like a wedged engine would) — and asserts the router's
contract:

* a degraded replica is routed around, not waited on;
* load is shed (503 + *dynamic* ``Retry-After``) only when every live
  replica is saturated;
* a replica drains cleanly when stopped mid-flight;
* every submitted request is answered exactly once — no drops, no
  duplicates — across failures, retries, and drains.
"""

import asyncio
import json
import threading
import time
from collections import deque

import pytest

from repro.engine import PurePythonEngine
from repro.serving import (
    AlignmentCluster,
    AlignmentHTTPServer,
    ClusterSaturatedError,
)
from repro.serving.http import open_memory_connection


def run(coro):
    return asyncio.run(coro)


class ScriptableEngine(PurePythonEngine):
    """Engine double with scriptable per-call latency, errors, and hangs.

    Behaviors compose in order: record the call, block on ``hang`` (if
    armed), sleep ``delay`` seconds, raise the next scripted exception
    (``failures`` first, then ``fail_always``), else compute for real.
    All mutable state is lock-guarded — calls arrive on server worker
    threads.
    """

    def __init__(self, *, delay=0.0, fail_always=None):
        self.delay = delay
        self.fail_always = fail_always
        self.failures = deque()
        self.hang: threading.Event | None = None
        self.calls: list[tuple[str, list]] = []
        self._lock = threading.Lock()

    def _behave(self, kind, payloads):
        with self._lock:
            self.calls.append((kind, list(payloads)))
            scripted = self.failures.popleft() if self.failures else None
        if self.hang is not None:
            assert self.hang.wait(timeout=10.0), "test forgot to release hang"
        if self.delay:
            time.sleep(self.delay)
        if scripted is not None:
            raise scripted
        if self.fail_always is not None:
            raise self.fail_always

    def scan_batch(self, pairs, k, **kwargs):
        self._behave("scan", pairs)
        return super().scan_batch(pairs, k, **kwargs)

    def run_dc_windows(self, jobs, **kwargs):
        self._behave("dc", jobs)
        return super().run_dc_windows(jobs, **kwargs)

    def served_pairs(self):
        """Every (text, pattern) payload this engine saw, flattened."""
        with self._lock:
            return [pair for _, payloads in self.calls for pair in payloads]


def make_cluster(engines, **kwargs):
    kwargs.setdefault("policy", "least_in_flight")
    kwargs.setdefault("batch_size", 1)
    kwargs.setdefault("flush_interval", 0.001)
    return AlignmentCluster(
        replicas=len(engines),
        engine_factory=lambda i: engines[i],
        **kwargs,
    )


def unique_pairs(count, length=12):
    """Distinct (text, pattern) payloads so request identity is traceable."""
    bases = "ACGT"
    pairs = []
    for i in range(count):
        text = "".join(bases[(i + j) % 4] for j in range(length)) + "ACGT"
        pairs.append((text, text[2 : 2 + length // 2]))
    return pairs


async def wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(interval)
    raise AssertionError("condition not reached in time")


class TestRoutingAroundDegradation:
    def test_degraded_replica_is_routed_around(self):
        """With one replica injected with heavy latency, the EWMA policy
        sends essentially all later traffic to the healthy replica and
        total wall time reflects the healthy one's speed."""

        async def main():
            slow = ScriptableEngine(delay=0.15)
            fast = ScriptableEngine()
            async with make_cluster(
                [slow, fast], policy="latency_ewma"
            ) as cluster:
                pairs = unique_pairs(24)
                # Warm-up: both replicas get probed while unmeasured.
                await cluster.edit_distance(*pairs[0], 6)
                await cluster.edit_distance(*pairs[1], 6)
                started = time.perf_counter()
                results = await asyncio.gather(
                    *(cluster.edit_distance(t, p, 6) for t, p in pairs[2:])
                )
                elapsed = time.perf_counter() - started
                counts = [r.completed for r in cluster.replicas]
                return results, counts, elapsed

        results, counts, elapsed = run(main())
        assert all(r is not None for r in results)
        # The healthy replica carried the load after the probe phase.
        assert counts[1] >= 20
        assert counts[0] <= 2
        # 22 requests at 0.15 s each would be ~3.3 s if the slow replica
        # were still in rotation.
        assert elapsed < 1.0


class TestLoadShedding:
    def test_sheds_only_at_full_saturation(self):
        async def main():
            engines = [ScriptableEngine(), ScriptableEngine()]
            release = threading.Event()
            for engine in engines:
                engine.hang = release
            cluster = make_cluster(engines, max_pending=1)
            try:
                pairs = unique_pairs(3)
                first = asyncio.create_task(
                    cluster.edit_distance(*pairs[0], 6)
                )
                await wait_for(
                    lambda: cluster.replicas[0].server.in_flight
                    + cluster.replicas[1].server.in_flight
                    == 1
                )
                # One replica busy is NOT saturation: the second request
                # routes to the free replica instead of shedding.
                assert not cluster.saturated
                second = asyncio.create_task(
                    cluster.edit_distance(*pairs[1], 6)
                )
                await wait_for(lambda: cluster.saturated)
                assert cluster.shed == 0
                # Now every live replica is at capacity: shed.
                with pytest.raises(ClusterSaturatedError) as shed_info:
                    await cluster.edit_distance(*pairs[2], 6)
                release.set()
                results = await asyncio.gather(first, second)
                return cluster, shed_info.value, results
            finally:
                release.set()
                await cluster.stop()

        cluster, shed_error, results = run(main())
        assert cluster.shed == 1
        assert shed_error.retry_after > 0
        # The two admitted requests were both answered (exactly once).
        assert all(r is not None for r in results)
        assert cluster.stats.served == 2

    def test_shed_retry_after_tracks_observed_service_time(self):
        """The Retry-After hint is computed from EWMAs, not a constant:
        priming one replica's service EWMA moves the hint."""

        async def main():
            engines = [ScriptableEngine(), ScriptableEngine()]
            release = threading.Event()
            for engine in engines:
                engine.hang = release
            cluster = make_cluster(engines, max_pending=1)
            try:
                tasks = [
                    asyncio.create_task(
                        cluster.edit_distance(*pair, 6)
                    )
                    for pair in unique_pairs(2)
                ]
                await wait_for(lambda: cluster.saturated)
                quick_hint = cluster.suggested_retry_after()
                # Both replicas now "remember" slow engine calls.
                for replica in cluster.replicas:
                    replica.server._observe_service(3.0)
                slow_hint = cluster.suggested_retry_after()
                with pytest.raises(ClusterSaturatedError) as shed_info:
                    await cluster.edit_distance(*unique_pairs(3)[2], 6)
                release.set()
                await asyncio.gather(*tasks)
                return quick_hint, slow_hint, shed_info.value.retry_after
            finally:
                release.set()
                await cluster.stop()

        quick_hint, slow_hint, shed_hint = run(main())
        assert slow_hint > quick_hint
        assert slow_hint >= 3.0
        assert shed_hint == pytest.approx(slow_hint, rel=0.5)

    def test_http_503_carries_dynamic_retry_after(self):
        async def main():
            engines = [ScriptableEngine(), ScriptableEngine()]
            release = threading.Event()
            for engine in engines:
                engine.hang = release
            cluster = make_cluster(engines, max_pending=1)
            front = AlignmentHTTPServer(cluster)
            try:
                busy = []
                for pair in unique_pairs(2):
                    reader, writer = await open_memory_connection(front)
                    body = json.dumps(
                        {"text": pair[0], "pattern": pair[1], "k": 6}
                    ).encode()
                    writer.write(
                        (
                            "POST /v1/edit_distance HTTP/1.1\r\nHost: t\r\n"
                            f"Content-Length: {len(body)}\r\n\r\n"
                        ).encode()
                        + body
                    )
                    await writer.drain()
                    busy.append((reader, writer))
                await wait_for(lambda: cluster.saturated)
                for replica in cluster.replicas:
                    replica.server._observe_service(2.5)
                reader, writer = await open_memory_connection(front)
                pair = unique_pairs(3)[2]
                body = json.dumps(
                    {"text": pair[0], "pattern": pair[1], "k": 6}
                ).encode()
                writer.write(
                    (
                        "POST /v1/edit_distance HTTP/1.1\r\nHost: t\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n"
                    ).encode()
                    + body
                )
                await writer.drain()
                status_line = await reader.readline()
                status = int(status_line.split()[1])
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                raw = await reader.readexactly(
                    int(headers.get("content-length", "0"))
                )
                payload = json.loads(raw)
                release.set()
                for busy_reader, _ in busy:
                    await busy_reader.readline()  # let responses flow
                return status, headers, payload
            finally:
                release.set()
                await front.stop()

        status, headers, payload = run(main())
        assert status == 503
        # Header is the RFC delay-seconds (integer ceiling of the hint);
        # the body carries the precise estimate. Both reflect the primed
        # 2.5 s EWMA rather than the old constant 1.
        assert payload["retry_after"] >= 2.5
        assert int(headers["retry-after"]) >= 3
        assert int(headers["retry-after"]) == -(-payload["retry_after"] // 1)


class TestDraining:
    def test_drain_replica_mid_flight_finishes_its_work(self):
        async def main():
            hanging = ScriptableEngine()
            healthy = ScriptableEngine()
            release = threading.Event()
            hanging.hang = release
            async with make_cluster(
                [hanging, healthy], policy="round_robin"
            ) as cluster:
                pairs = unique_pairs(10)
                # Pin one request inside replica-0's engine.
                stuck = asyncio.create_task(
                    cluster.edit_distance(*pairs[0], 6)
                )
                await wait_for(
                    lambda: cluster.replicas[0].server.in_flight == 1
                )
                drain = asyncio.create_task(cluster.drain_replica(0))
                await asyncio.sleep(0.02)
                assert not drain.done()  # drain waits for the in-flight work
                assert cluster.replicas[0].draining
                # New traffic keeps flowing, all of it to the live replica.
                mid_drain = await asyncio.gather(
                    *(cluster.edit_distance(t, p, 6) for t, p in pairs[1:])
                )
                release.set()
                await drain
                stuck_result = await stuck
                return cluster, stuck_result, mid_drain, healthy, hanging

        cluster, stuck_result, mid_drain, healthy, hanging = run(main())
        assert cluster.replicas[0].state == "stopped"
        # The mid-flight request was answered, not dropped, and exactly
        # once: replica-0's engine saw exactly one payload.
        assert stuck_result is not None
        assert len(hanging.served_pairs()) == 1
        assert all(r is not None for r in mid_drain)
        assert len(healthy.served_pairs()) == 9

    def test_raced_server_stop_marks_replica_and_reroutes(self):
        async def main():
            engines = [ScriptableEngine(), ScriptableEngine()]
            async with make_cluster(
                engines, policy="round_robin"
            ) as cluster:
                # Stop replica-0's server out from under the router.
                await cluster.replicas[0].server.stop()
                pairs = unique_pairs(4)
                results = [
                    await cluster.edit_distance(t, p, 6) for t, p in pairs
                ]
                return cluster, results, engines

        cluster, results, engines = run(main())
        assert all(r is not None for r in results)
        assert cluster.replicas[0].stopped
        assert cluster.retries >= 1
        assert len(engines[1].served_pairs()) == 4


class TestFailureContainment:
    def test_flaky_replica_every_request_answered_exactly_once(self):
        async def main():
            flaky = ScriptableEngine(fail_always=RuntimeError("engine died"))
            healthy = ScriptableEngine()
            async with make_cluster(
                [flaky, healthy],
                policy="round_robin",
                failure_cooldown=0.01,
            ) as cluster:
                pairs = unique_pairs(30)
                results = await asyncio.gather(
                    *(cluster.edit_distance(t, p, 8) for t, p in pairs)
                )
                return cluster, results, pairs, flaky, healthy

        cluster, results, pairs, flaky, healthy = run(main())
        # Every request answered, with a real result.
        assert len(results) == len(pairs)
        assert all(r is not None for r in results)
        # ...and exactly once: the healthy engine served each distinct
        # payload exactly one time — nothing dropped, nothing duplicated
        # by the retry path.
        served = healthy.served_pairs()
        assert sorted(served) == sorted(pairs)
        assert cluster.replicas[0].failed >= 1
        assert cluster.retries >= 1

    def test_all_replicas_failing_propagates_the_error(self):
        async def main():
            engines = [
                ScriptableEngine(fail_always=RuntimeError("replica 0 died")),
                ScriptableEngine(fail_always=RuntimeError("replica 1 died")),
            ]
            async with make_cluster(engines) as cluster:
                with pytest.raises(RuntimeError, match="died"):
                    await cluster.edit_distance("ACGTACGT", "ACGT", 4)
                return cluster

        cluster = run(main())
        # Both replicas were tried before giving up.
        assert all(r.dispatched == 1 for r in cluster.replicas)
        assert all(r.failed == 1 for r in cluster.replicas)

    def test_failing_replica_recovers_after_cooldown(self):
        async def main():
            flaky = ScriptableEngine()
            flaky.failures.append(RuntimeError("transient hiccup"))
            healthy = ScriptableEngine()
            async with make_cluster(
                [flaky, healthy],
                policy="round_robin",
                failure_cooldown=0.02,
            ) as cluster:
                pairs = unique_pairs(8)
                # First request hits the flaky replica, fails over.
                assert await cluster.edit_distance(*pairs[0], 6) is not None
                assert cluster.replicas[0].state == "cooldown"
                await asyncio.sleep(0.1)  # cooldown expires
                for text, pattern in pairs[1:]:
                    await cluster.edit_distance(text, pattern, 6)
                return cluster.replicas[0].completed, cluster.replicas[0].state

        completed, state = run(main())
        # The replica re-entered rotation and served real traffic again.
        assert completed >= 1
        assert state == "up"

    def test_cooldown_backs_off_exponentially(self):
        from repro.serving import AlignmentServer, Replica

        server = AlignmentServer(engine=ScriptableEngine())
        replica = Replica("replica-test", server, failure_cooldown=0.25)
        gaps = []
        for _ in range(7):
            now = time.monotonic()
            replica.record_failure(now)
            gaps.append(replica.cooldown_until - now)
        # Each consecutive failure doubles the sit-out, capped at 16x.
        assert gaps[:5] == pytest.approx(
            [0.25, 0.5, 1.0, 2.0, 4.0]
        )
        assert gaps[5] == gaps[6] == pytest.approx(4.0)
        # One success resets the penalty entirely.
        replica.record_success(0.01)
        assert replica.consecutive_failures == 0
        assert replica.cooldown_until == 0.0
        run(server.stop())
