"""Consistent-hash routing: affinity, minimal rebalance, cache synergy."""

import asyncio

from repro.engine import PurePythonEngine
from repro.serving import (
    ROUTING_POLICIES,
    AlignmentCluster,
    ConsistentHashPolicy,
    Replica,
)
from repro.serving.server import AlignmentServer


def run(coro):
    return asyncio.run(coro)


def replicas(n):
    return [
        Replica(f"replica-{i}", AlignmentServer(engine=PurePythonEngine()))
        for i in range(n)
    ]


def keys(n):
    return [f"key-{i:05d}" for i in range(n)]


class TestRingProperties:
    def test_registered_by_name(self):
        assert ROUTING_POLICIES["consistent_hash"] is ConsistentHashPolicy
        assert ConsistentHashPolicy.needs_key is True

    def test_same_key_same_replica(self):
        policy = ConsistentHashPolicy()
        pool = replicas(4)
        for key in keys(50):
            owner = policy.select_keyed(pool, key)
            for _ in range(5):
                assert policy.select_keyed(pool, key) is owner

    def test_keys_spread_across_replicas(self):
        policy = ConsistentHashPolicy()
        pool = replicas(4)
        owners = {policy.select_keyed(pool, key).name for key in keys(200)}
        assert owners == {r.name for r in pool}

    def test_removal_only_remaps_the_lost_arc(self):
        """Dropping one replica must move only the keys it owned — every
        other key keeps its replica (the property that preserves warm
        caches through a drain)."""
        policy = ConsistentHashPolicy()
        pool = replicas(4)
        before = {key: policy.select_keyed(pool, key).name for key in keys(300)}
        lost, survivors = pool[1], pool[:1] + pool[2:]
        after = {
            key: policy.select_keyed(survivors, key).name for key in keys(300)
        }
        for key, owner in before.items():
            if owner != lost.name:
                assert after[key] == owner
        moved = [key for key, owner in before.items() if owner == lost.name]
        assert moved  # the lost replica owned *something*
        for key in moved:
            assert after[key] != lost.name

    def test_addition_only_steals_for_the_new_arc(self):
        policy = ConsistentHashPolicy()
        pool = replicas(3)
        before = {key: policy.select_keyed(pool, key).name for key in keys(300)}
        grown = pool + replicas(4)[3:]  # add "replica-3"
        after = {key: policy.select_keyed(grown, key).name for key in keys(300)}
        for key in keys(300):
            assert after[key] in (before[key], "replica-3")

    def test_keyless_requests_fall_back_to_rotation(self):
        policy = ConsistentHashPolicy()
        pool = replicas(3)
        picked = [policy.select_keyed(pool, None).name for _ in range(6)]
        assert set(picked) == {r.name for r in pool}  # round-robin spread

    def test_more_vnodes_balance_better(self):
        coarse = ConsistentHashPolicy(vnodes=1)
        fine = ConsistentHashPolicy(vnodes=256)
        pool = replicas(4)

        def imbalance(policy):
            counts = {r.name: 0 for r in pool}
            for key in keys(2000):
                counts[policy.select_keyed(pool, key).name] += 1
            return max(counts.values()) - min(counts.values())

        assert imbalance(fine) < imbalance(coarse)


class CountingEngine(PurePythonEngine):
    def __init__(self):
        self.batch_calls = 0

    def scan_batch(self, pairs, k, **kwargs):
        self.batch_calls += 1
        return super().scan_batch(pairs, k, **kwargs)


def texts_for(n):
    texts = []
    for i in range(n):
        # Base-4 encode i so every text is genuinely distinct.
        tag = "".join("ACGT"[(i >> shift) & 3] for shift in (0, 2, 4, 6))
        texts.append(tag + "ACGTACGTACGT")
    return texts


class TestClusterAffinity:
    def test_each_key_cached_on_exactly_one_replica(self):
        """With consistent_hash + per-replica caches, a repeated key hits
        the same replica's cache every time — the aggregate behaves like
        one big cache instead of N copies of the hot set."""

        async def main():
            engines = [CountingEngine() for _ in range(3)]
            cluster = AlignmentCluster(
                replicas=3,
                engine_factory=lambda i: engines[i],
                policy="consistent_hash",
                batch_size=1,
                flush_interval=0.001,
                cache=True,
            )
            async with cluster:
                for text in texts_for(6):
                    first = await cluster.scan(text, "ACGT", 1)
                    for _ in range(4):
                        assert await cluster.scan(text, "ACGT", 1) == first
                stats = cluster.cache_stats
                # 6 distinct keys, each computed once then hit 4 times.
                assert stats.misses == 6
                assert stats.hits == 24
                assert sum(e.batch_calls for e in engines) == 6

        run(main())

    def test_rebalance_after_drain_stays_correct(self):
        """Draining a replica remaps its keys to survivors; evicted-arc
        keys recompute to identical answers, other keys keep hitting."""

        async def main():
            engines = [CountingEngine() for _ in range(3)]
            cluster = AlignmentCluster(
                replicas=3,
                engine_factory=lambda i: engines[i],
                policy="consistent_hash",
                batch_size=1,
                flush_interval=0.001,
                cache=True,
            )
            async with cluster:
                texts = texts_for(8)
                before = {t: await cluster.scan(t, "ACGT", 1) for t in texts}
                calls_before = sum(e.batch_calls for e in engines)
                await cluster.drain_replica(1)
                after = {t: await cluster.scan(t, "ACGT", 1) for t in texts}
                assert after == before
                recomputed = sum(e.batch_calls for e in engines) - calls_before
                # Only the drained replica's arc recomputes; the rest hit
                # their still-warm owners.
                drained_calls = engines[1].batch_calls
                assert recomputed <= drained_calls
                assert recomputed < len(texts)

        run(main())

    def test_works_without_caches_too(self):
        async def main():
            cluster = AlignmentCluster(
                replicas=2,
                engine="pure",
                policy="consistent_hash",
                batch_size=1,
                flush_interval=0.001,
            )
            async with cluster:
                result = await cluster.scan("ACGTACGTACGT", "ACGT", 1)
                assert result
                assert cluster.cache_stats is None
                assert "cache" not in cluster.stats_payload()

        run(main())
