"""Tests for the streaming job fabric (JobManager + /v1/jobs endpoints).

The acceptance-critical property — a map job fed over HTTP in arbitrary
chunks, with the client disconnecting mid-job and resuming from its last
byte offset, yields SAM byte-identical to the in-process pipeline — is
exercised end to end through the in-memory connection here and over real
TCP through a 2-replica cluster in ``benchmarks/bench_wgs.py``.
"""

import asyncio
import io
import json

import pytest

from repro.mapping.pipeline import make_genasm_mapper
from repro.mapping.sam import write_sam
from repro.sequences.genome import synthesize_genome
from repro.sequences.io import FastqRecord, write_fastq
from repro.sequences.read_simulator import illumina_profile, simulate_reads
from repro.serving import (
    AlignmentHTTPServer,
    AlignmentServer,
    JobError,
    JobManager,
    JobRejectedError,
)
from repro.serving.jobs import JobOutput
from repro.usecases.overlap import find_overlaps
from repro.usecases.text_search import search_text
from repro.usecases.whole_genome import align_genomes

from tests.serving.test_http import HttpClient, run


GENOME = synthesize_genome(20_000, seed=50)
READS = simulate_reads(
    GENOME, count=16, read_length=100, profile=illumina_profile(0.05), seed=51
)


def reads_fastq() -> str:
    out = io.StringIO()
    write_fastq(
        [FastqRecord(r.name, r.sequence, "I" * len(r.sequence)) for r in READS],
        out,
    )
    return out.getvalue()


def expected_sam() -> str:
    mapper = make_genasm_mapper(GENOME, engine="pure")
    results = mapper.map_reads([(r.name, r.sequence) for r in READS])
    out = io.StringIO()
    write_sam(
        [r.record for r in results],
        out,
        reference_sequences=[(GENOME.name, len(GENOME))],
    )
    return out.getvalue()


def make_server(**kwargs):
    kwargs.setdefault("engine", "pure")
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("flush_interval", 0.002)
    kwargs.setdefault("mapper", make_genasm_mapper(GENOME, engine="pure"))
    return AlignmentServer(**kwargs)


class TestJobOutput:
    def test_offset_reads(self):
        output = JobOutput(spool_bytes=8)
        output.append("hello ")
        output.append("world")  # rolls past the spool threshold
        assert output.size == 11
        assert output.read(0, 5) == "hello"
        assert output.read(6, 100) == "world"
        assert output.read(11, 10) == ""
        assert output.read(999, 10) == ""
        output.close()

    def test_bad_offsets_rejected(self):
        output = JobOutput()
        with pytest.raises(JobError):
            output.read(-1, 10)
        with pytest.raises(JobError):
            output.read(0, 0)
        output.close()


class TestMapJobs:
    def test_chunked_map_job_matches_in_process(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server, window=4)
                job = manager.create("map")
                data = reads_fastq()
                third = len(data) // 3
                for i, chunk in enumerate(
                    (data[:third], data[third : 2 * third], data[2 * third :])
                ):
                    await manager.append_input(
                        job.job_id, chunk, final=(i == 2)
                    )
                await job.task
                assert job.state == "done"
                assert job.reads_in == job.reads_done == len(READS)
                return job.output.read(0, 10**6)

        assert run(main()) == expected_sam()

    def test_window_one_still_ordered(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server, window=1)
                job = manager.create("map")
                await manager.append_input(job.job_id, reads_fastq(), final=True)
                await job.task
                return job.output.read(0, 10**6)

        assert run(main()) == expected_sam()

    def test_malformed_fastq_fails_job_with_record_index(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create("map")
                with pytest.raises(ValueError, match="record 1"):
                    await manager.append_input(
                        job.job_id, "@\nACGT\n+\nIIII\n", final=True
                    )
                try:
                    await job.task
                except asyncio.CancelledError:
                    pass
                return job

        job = run(main())
        assert job.state == "failed"
        assert "no read name" in job.error

    def test_input_after_final_rejected(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create("map")
                await manager.append_input(job.job_id, reads_fastq(), final=True)
                with pytest.raises(JobError, match="closed"):
                    await manager.append_input(job.job_id, "@r\nA\n+\nI\n")
                await job.task

        run(main())

    def test_cancel_mid_stream(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create("map")
                await manager.append_input(job.job_id, reads_fastq())
                job = await manager.cancel(job.job_id)
                return job

        job = run(main())
        assert job.state == "cancelled"
        assert job.finished

    def test_map_requires_mapper(self):
        async def main():
            async with make_server(mapper=None) as server:
                manager = JobManager(server)
                with pytest.raises(JobError, match="mapper"):
                    manager.create("map")

        run(main())


class TestBatchJobs:
    def test_whole_genome_matches_align_genomes(self, rng):
        from repro.sequences.mutate import MutationProfile, mutate

        reference = synthesize_genome(2_000, seed=52).sequence
        query = mutate(reference, MutationProfile(0.05), rng=rng).sequence
        direct = align_genomes(reference, query)

        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create(
                    "whole_genome", {"reference": reference, "query": query}
                )
                await job.task
                return job

        job = run(main())
        assert job.state == "done"
        assert job.result["edit_distance"] == direct.edit_distance
        assert job.result["identity"] == direct.identity
        assert job.output.read(0, 10**6) == direct.cigar.to_sam() + "\n"

    def test_overlap_matches_find_overlaps(self):
        base = synthesize_genome(3_000, seed=53).sequence
        reads = [base[i * 400 : i * 400 + 700] for i in range(6)]
        direct = find_overlaps(reads, min_overlap=100)

        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create(
                    "overlap", {"reads": reads, "min_overlap": 100}
                )
                await job.task
                return job

        job = run(main())
        assert job.state == "done"
        assert job.result["overlaps"] == len(direct)
        got = [
            json.loads(line)
            for line in job.output.read(0, 10**6).splitlines()
        ]
        assert [(o["a_index"], o["b_index"], o["a_start"]) for o in got] == [
            (o.a_index, o.b_index, o.a_start) for o in direct
        ]

    def test_text_search_matches_search_text(self):
        text = synthesize_genome(5_000, seed=54).sequence
        pattern = text[1_200:1_230]
        direct = search_text(text, pattern, 2, with_traceback=True)

        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create(
                    "text_search",
                    {
                        "text": text,
                        "pattern": pattern,
                        "max_errors": 2,
                        "with_traceback": True,
                    },
                )
                await job.task
                return job

        job = run(main())
        assert job.state == "done"
        got = [
            json.loads(line)
            for line in job.output.read(0, 10**6).splitlines()
        ]
        assert [(m["start"], m["distance"]) for m in got] == [
            (m.start, m.distance) for m in direct
        ]
        assert [m["cigar"] for m in got] == [m.cigar.to_sam() for m in direct]

    def test_invalid_payloads_fail(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                wg = manager.create("whole_genome", {"reference": "", "query": "A"})
                ov = manager.create("overlap", {"reads": "notalist"})
                ts = manager.create(
                    "text_search", {"text": "ACGT", "pattern": ""}
                )
                for job in (wg, ov, ts):
                    await asyncio.gather(job.task, return_exceptions=True)
                return wg, ov, ts

        for job in run(main()):
            assert job.state == "failed"
            assert job.error


class TestManagerLimits:
    def test_capacity_rejection(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server, max_active=1)
                first = manager.create("map")
                with pytest.raises(JobRejectedError):
                    manager.create("map")
                await manager.cancel(first.job_id)

        run(main())

    def test_unknown_kind_rejected(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                with pytest.raises(JobError, match="unknown job kind"):
                    manager.create("frobnicate")

        run(main())

    def test_finished_eviction(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server, max_finished=2)
                jobs = []
                for _ in range(4):
                    job = manager.create(
                        "text_search",
                        {"text": "ACGTACGT", "pattern": "ACGT"},
                    )
                    await job.task
                    jobs.append(job)
                return manager, jobs

        manager, jobs = run(main())
        assert len(manager.jobs) == 2
        assert jobs[0].job_id not in manager.jobs
        assert jobs[-1].job_id in manager.jobs

    def test_stats_and_metrics(self):
        async def main():
            async with make_server() as server:
                manager = JobManager(server)
                job = manager.create("map")
                await manager.append_input(job.job_id, reads_fastq(), final=True)
                await job.task
                return manager

        manager = run(main())
        stats = manager.stats_payload()
        assert stats["created_total"] == {"map": 1}
        assert stats["finished_total"] == {"done": 1}
        assert stats["reads_total"] == len(READS)
        names = [family.name for family in manager.collect_metrics()]
        assert "genasm_jobs" in names
        assert "genasm_job_reads_total" in names


class TestHttpJobs:
    def test_map_job_survives_reconnect_and_matches(self):
        """The acceptance path: chunked ingest, mid-job disconnect, offset
        resume, byte-identical SAM."""

        async def main():
            server = make_server()
            front = AlignmentHTTPServer(server)
            async with front:
                data = reads_fastq()
                third = len(data) // 3

                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST", "/v1/jobs/map", {"fastq": data[:third]}
                )
                assert status == 200
                job_id = body["job_id"]
                assert body["state"] in ("pending", "running")

                # Read whatever output exists, then drop the connection
                # mid-job — the fabric must not care.
                status, first, _ = await client.request(
                    "GET", f"/v1/jobs/{job_id}/output?offset=0&limit=64"
                )
                assert status == 200
                client.close()

                client = await HttpClient.connect(front)
                status, _, _ = await client.request(
                    "POST",
                    f"/v1/jobs/{job_id}/input",
                    {"fastq": data[third : 2 * third]},
                )
                assert status == 200
                status, body, _ = await client.request(
                    "POST",
                    f"/v1/jobs/{job_id}/input",
                    {"fastq": data[2 * third :], "final": True},
                )
                assert status == 200
                assert body["input_closed"] is True

                # Poll status until done, then pull output by offsets.
                while True:
                    status, body, _ = await client.request(
                        "GET", f"/v1/jobs/{job_id}"
                    )
                    assert status == 200
                    if body["state"] == "done":
                        break
                    await asyncio.sleep(0.01)
                assert body["reads_done"] == len(READS)

                collected = first["data"]
                offset = len(collected.encode("ascii"))
                while True:
                    status, chunk, _ = await client.request(
                        "GET",
                        f"/v1/jobs/{job_id}/output?offset={offset}&limit=256",
                    )
                    assert status == 200
                    collected += chunk["data"]
                    offset = chunk["next_offset"]
                    if chunk["eof"]:
                        break
                client.close()
                return collected

        assert run(main()) == expected_sam()

    def test_error_paths(self):
        async def main():
            server = make_server()
            front = AlignmentHTTPServer(server)
            async with front:
                client = await HttpClient.connect(front)
                unknown_kind = await client.request(
                    "POST", "/v1/jobs/frobnicate", {}
                )
                unknown_job = await client.request(
                    "GET", "/v1/jobs/deadbeef"
                )
                unknown_output = await client.request(
                    "GET", "/v1/jobs/deadbeef/output"
                )
                bare_prefix = await client.request("GET", "/v1/jobs")
                wrong_method = await client.request("GET", "/v1/jobs/map")
                bad_offset = None
                status, body, _ = await client.request(
                    "POST",
                    "/v1/jobs/text_search",
                    {"text": "ACGTACGT", "pattern": "ACGT"},
                )
                assert status == 200
                bad_offset = await client.request(
                    "GET", f"/v1/jobs/{body['job_id']}/output?offset=-1"
                )
                client.close()
                return (
                    unknown_kind,
                    unknown_job,
                    unknown_output,
                    bare_prefix,
                    wrong_method,
                    bad_offset,
                )

        results = run(main())
        unknown_kind, unknown_job, unknown_output = results[:3]
        bare_prefix, wrong_method, bad_offset = results[3:]
        assert unknown_kind[0] == 400
        assert unknown_job[0] == 404
        assert unknown_output[0] == 404
        assert bare_prefix[0] == 404
        assert wrong_method[0] == 405
        assert bad_offset[0] == 400

    def test_cancel_and_stats_over_http(self):
        async def main():
            server = make_server()
            front = AlignmentHTTPServer(server)
            async with front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST", "/v1/jobs/map", {}
                )
                assert status == 200
                job_id = body["job_id"]
                status, body, _ = await client.request(
                    "POST", f"/v1/jobs/{job_id}/cancel"
                )
                assert status == 200
                assert body["state"] == "cancelled"
                status, stats, _ = await client.request("GET", "/v1/stats")
                assert status == 200
                client.close()
                return stats

        stats = run(main())
        assert stats["jobs"]["created_total"] == {"map": 1}
        assert stats["jobs"]["finished_total"] == {"cancelled": 1}

    def test_jobs_disabled_is_501(self):
        async def main():
            server = make_server()
            front = AlignmentHTTPServer(server, jobs=False)
            async with front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST", "/v1/jobs/map", {}
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 501

    def test_whole_genome_through_cluster(self, rng):
        from repro.sequences.mutate import MutationProfile, mutate
        from repro.serving import AlignmentCluster

        reference = synthesize_genome(1_500, seed=55).sequence
        query = mutate(reference, MutationProfile(0.04), rng=rng).sequence
        direct = align_genomes(reference, query)

        async def main():
            cluster = AlignmentCluster(
                replicas=2,
                engine="pure",
                batch_size=8,
                flush_interval=0.002,
            )
            front = AlignmentHTTPServer(cluster)
            async with front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/jobs/whole_genome",
                    {"reference": reference, "query": query},
                )
                assert status == 200
                job_id = body["job_id"]
                while True:
                    status, body, _ = await client.request(
                        "GET", f"/v1/jobs/{job_id}"
                    )
                    if body["state"] in ("done", "failed"):
                        break
                    await asyncio.sleep(0.01)
                client.close()
                return body

        body = run(main())
        assert body["state"] == "done"
        assert body["result"]["edit_distance"] == direct.edit_distance
