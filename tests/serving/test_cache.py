"""Content-addressed result cache: digests, budgets, server integration."""

import asyncio

import pytest

from repro.engine import PurePythonEngine
from repro.serving import AlignmentCache, AlignmentServer, make_cache
from repro.serving.cache import MISS, approx_size, request_digest


def run(coro):
    return asyncio.run(coro)


class TestRequestDigest:
    def test_stable_across_calls(self):
        a = request_digest("scan", "ACGT", "AC", 1)
        b = request_digest("scan", "ACGT", "AC", 1)
        assert a == b
        assert len(a) == 32  # 16-byte blake2b, hex

    def test_every_part_matters(self):
        base = request_digest("scan", "ACGT", "AC", 1)
        assert request_digest("align", "ACGT", "AC", 1) != base
        assert request_digest("scan", "ACGG", "AC", 1) != base
        assert request_digest("scan", "ACGT", "AG", 1) != base
        assert request_digest("scan", "ACGT", "AC", 2) != base

    def test_length_prefix_blocks_boundary_collisions(self):
        # Same concatenated character stream, different part split.
        assert request_digest("scan", "ABC", "D") != request_digest(
            "scan", "AB", "CD"
        )

    def test_config_tuple_participates(self):
        with_config = request_digest("scan", "ACGT", ("dna", "ACGT", "N"))
        other_config = request_digest("scan", "ACGT", ("dna", "ACGT", "X"))
        assert with_config != other_config


class TestApproxSize:
    def test_bigger_payloads_report_bigger(self):
        assert approx_size("A" * 10_000) > approx_size("A")
        assert approx_size(list(range(1000))) > approx_size([1])

    def test_object_attributes_counted(self):
        class Holder:
            def __init__(self, payload):
                self.payload = payload

        assert approx_size(Holder("A" * 10_000)) > approx_size(Holder("A"))

    def test_large_lists_extrapolate_not_crawl(self):
        # A million-element list must still be sized (sampled), and the
        # estimate must scale with the length.
        big = ["x" * 50] * 100_000
        small = ["x" * 50] * 1_000
        assert approx_size(big) > approx_size(small) * 10


class TestAlignmentCacheBudgets:
    def test_get_miss_then_hit(self):
        cache = AlignmentCache()
        assert cache.get("k") is MISS
        assert cache.put("k", [1, 2, 3])
        assert cache.get("k") == [1, 2, 3]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_cached_none_is_not_a_miss(self):
        cache = AlignmentCache()
        cache.put("k", None)  # edit_distance legitimately caches None
        assert cache.get("k") is None
        assert cache.stats.hits == 1

    def test_entry_count_eviction_is_lru(self):
        cache = AlignmentCache(max_entries=2, max_bytes=1 << 30)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_byte_budget_evicts_until_under(self):
        one = approx_size("x" * 1000)
        cache = AlignmentCache(max_entries=1000, max_bytes=int(one * 2.5))
        cache.put("a", "x" * 1000)
        cache.put("b", "y" * 1000)
        cache.put("c", "z" * 1000)  # over budget -> evict "a"
        assert cache.get("a") is MISS
        assert cache.get("b") is not MISS
        assert cache.get("c") is not MISS
        assert cache.bytes_used <= cache.max_bytes

    def test_oversize_value_rejected_not_stored(self):
        cache = AlignmentCache(max_entries=10, max_bytes=256)
        cache.put("small", 1)
        assert not cache.put("huge", "x" * 10_000)
        assert cache.get("huge") is MISS
        assert cache.get("small") == 1  # rejection did not nuke the cache
        assert cache.stats.rejected == 1

    def test_replace_releases_old_size(self):
        cache = AlignmentCache()
        cache.put("k", "x" * 1000)
        before = cache.bytes_used
        cache.put("k", "y")
        assert cache.bytes_used < before
        assert len(cache) == 1

    def test_occupancy_tracked_in_stats(self):
        cache = AlignmentCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.stats.entries == 2
        assert cache.stats.bytes == cache.bytes_used > 0
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes == 0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AlignmentCache(max_entries=0)
        with pytest.raises(ValueError):
            AlignmentCache(max_bytes=0)


class TestMakeCache:
    def test_spellings(self):
        assert make_cache(None) is None
        assert make_cache(False) is None
        assert isinstance(make_cache(True), AlignmentCache)
        mine = AlignmentCache(max_entries=7)
        assert make_cache(mine) is mine
        with pytest.raises(ValueError):
            make_cache("yes")


class CountingEngine(PurePythonEngine):
    """Counts batch calls so cache hits are observable as absent work."""

    def __init__(self):
        self.batch_calls = 0

    def scan_batch(self, pairs, k, **kwargs):
        self.batch_calls += 1
        return super().scan_batch(pairs, k, **kwargs)


class TestServerCacheIntegration:
    def test_repeat_requests_skip_the_engine(self):
        async def main():
            engine = CountingEngine()
            async with AlignmentServer(
                engine=engine, batch_size=4, flush_interval=0.001, cache=True
            ) as server:
                first = await server.scan("ACGTACGTACGT", "GTAC", 1)
                for _ in range(5):
                    assert await server.scan("ACGTACGTACGT", "GTAC", 1) == first
                assert engine.batch_calls == 1
                assert server.cache.stats.hits == 5
                payload = server.stats_payload()
                assert payload["cache"]["hits"] == 5

        run(main())

    def test_distinct_requests_all_computed(self):
        async def main():
            engine = CountingEngine()
            async with AlignmentServer(
                engine=engine, batch_size=64, flush_interval=0.001, cache=True
            ) as server:
                a = await server.scan("ACGTACGTACGT", "GTAC", 1)
                b = await server.scan("ACGTACGTACGT", "GTAC", 2)  # k differs
                c = await server.edit_distance("ACGTACGTACGT", "GTAC", 1)
                assert server.cache.stats.misses == 3
                assert a != b or c is not None  # all answered

        run(main())

    def test_correct_results_survive_eviction(self):
        """A cache too small for the working set must stay *correct* —
        evicted keys recompute to the same answer, never a stale one."""

        async def main():
            engine = CountingEngine()
            cache = AlignmentCache(max_entries=2, max_bytes=1 << 30)
            async with AlignmentServer(
                engine=engine, batch_size=1, flush_interval=0.001, cache=cache
            ) as server:
                texts = ["ACGTACGTACGT", "TTTTACGTAAAA", "GGGGACGTCCCC"]
                first = [await server.scan(t, "ACGT", 1) for t in texts]
                # Cycle again: every key was evicted by the others.
                second = [await server.scan(t, "ACGT", 1) for t in texts]
                assert first == second
                assert cache.stats.evictions >= 3
                assert engine.batch_calls == 6  # recomputed, not stale

        run(main())

    def test_cache_off_by_default(self):
        async def main():
            async with AlignmentServer(engine=PurePythonEngine()) as server:
                assert server.cache is None
                assert "cache" not in server.stats_payload()

        run(main())
