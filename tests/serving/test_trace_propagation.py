"""Trace propagation through the full serving stack.

These tests assert the *propagation* claims — the part of tracing that
can silently rot: the id minted (or honored) at the HTTP front must be
the same trace every downstream stage appends to, across the cluster
router, hedge duplicates, retry chains, the batching queue, the cache
path, and sharded engine workers on the other side of an IPC boundary.
Each scenario drives the real wire path via ``open_memory_connection``
and then inspects the retained trace by id.
"""

import asyncio
import json
import threading
import time
from collections import deque

import pytest

from repro.engine import PurePythonEngine
from repro.engine.sharded import ShardedEngine
from repro.serving import (
    AlignmentCluster,
    AlignmentHTTPServer,
    AlignmentServer,
    open_memory_connection,
)


def run(coro):
    return asyncio.run(coro)


class HttpClient:
    """Minimal HTTP/1.1 client over one stream pair (keep-alive capable)."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, front):
        return cls(*await open_memory_connection(front))

    async def request(self, method, path, body=None, *, headers=None):
        payload = b"" if body is None else json.dumps(body).encode()
        lines = [f"{method} {path} HTTP/1.1", "Host: test"]
        if payload:
            lines.append(f"Content-Length: {len(payload)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await self.writer.drain()
        status_line = await self.reader.readline()
        assert status_line, "connection closed before a response arrived"
        status = int(status_line.split()[1])
        response_headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        return status, (json.loads(body) if body else None), response_headers

    def close(self):
        self.writer.close()


class ScriptableEngine(PurePythonEngine):
    """Engine double with scriptable per-call latency, errors, and hangs."""

    def __init__(self, *, delay=0.0):
        self.delay = delay
        self.failures = deque()
        self.hang: threading.Event | None = None
        self.calls = 0
        self._lock = threading.Lock()

    def scan_batch(self, pairs, k, **kwargs):
        with self._lock:
            self.calls += 1
            scripted = self.failures.popleft() if self.failures else None
        if self.hang is not None:
            assert self.hang.wait(timeout=10.0), "test forgot to release hang"
        if self.delay:
            time.sleep(self.delay)
        if scripted is not None:
            raise scripted
        return super().scan_batch(pairs, k, **kwargs)


def make_cluster_front(engines, **kwargs):
    kwargs.setdefault("policy", "round_robin")
    kwargs.setdefault("batch_size", 1)
    kwargs.setdefault("flush_interval", 0.001)
    cluster = AlignmentCluster(
        replicas=len(engines),
        engine_factory=lambda i: engines[i],
        **kwargs,
    )
    return AlignmentHTTPServer(cluster)


SCAN = {"text": "ACGTACGT", "pattern": "ACGT", "k": 1}


def spans_named(trace_body, name):
    return [s for s in trace_body["spans"] if s["name"] == name]


class TestRequestIds:
    def test_every_response_carries_a_generated_id(self):
        async def main():
            front = AlignmentHTTPServer(
                AlignmentServer(engine="pure", batch_size=1, flush_interval=0.001)
            )
            async with front:
                client = await HttpClient.connect(front)
                _, _, first = await client.request("POST", "/v1/scan", SCAN)
                _, _, second = await client.request("POST", "/v1/scan", SCAN)
                client.close()
                return first, second

        first, second = run(main())
        assert len(first["x-request-id"]) == 32
        assert first["x-request-id"] != second["x-request-id"]

    def test_client_supplied_id_is_honored_and_queryable(self):
        async def main():
            front = AlignmentHTTPServer(
                AlignmentServer(engine="pure", batch_size=1, flush_interval=0.001)
            )
            async with front:
                client = await HttpClient.connect(front)
                _, _, headers = await client.request(
                    "POST", "/v1/scan", SCAN,
                    headers={"X-Request-ID": "req-from-client-7"},
                )
                status, trace, _ = await client.request(
                    "GET", "/v1/trace/req-from-client-7"
                )
                client.close()
                return headers, status, trace

        headers, status, trace = run(main())
        assert headers["x-request-id"] == "req-from-client-7"
        assert status == 200
        assert trace["trace_id"] == "req-from-client-7"
        assert trace["complete"] is True

    def test_unknown_trace_id_is_404(self):
        async def main():
            front = AlignmentHTTPServer(
                AlignmentServer(engine="pure", batch_size=1, flush_interval=0.001)
            )
            async with front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "GET", "/v1/trace/nope"
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 404
        assert "nope" in body["error"]

    def test_debug_timing_inlines_the_breakdown(self):
        async def main():
            front = AlignmentHTTPServer(
                AlignmentServer(engine="pure", batch_size=1, flush_interval=0.001)
            )
            async with front:
                client = await HttpClient.connect(front)
                _, body, _ = await client.request(
                    "POST", "/v1/scan?debug=timing", SCAN
                )
                client.close()
                return body

        body = run(main())
        assert body["matches"]
        names = [span["name"] for span in body["timing"]["spans"]]
        for expected in ("parse", "queue_wait", "batch_assembly", "engine"):
            assert expected in names

    def test_healthz_and_503_carry_the_request_id(self):
        async def main():
            server = AlignmentServer(
                engine=ScriptableEngine(delay=0.2),
                batch_size=1,
                flush_interval=0.001,
                max_pending=1,
            )
            async with AlignmentHTTPServer(server) as front:
                busy = await HttpClient.connect(front)
                probe = await HttpClient.connect(front)
                slow = asyncio.create_task(
                    busy.request("POST", "/v1/scan", SCAN)
                )
                for _ in range(200):
                    await asyncio.sleep(0.005)
                    if server.saturated:
                        break
                assert server.saturated
                _, health, health_headers = await probe.request(
                    "GET", "/healthz"
                )
                shed_status, shed_body, shed_headers = await probe.request(
                    "POST", "/v1/scan", SCAN
                )
                await slow
                busy.close()
                probe.close()
                return health, health_headers, shed_status, shed_body, shed_headers

        health, health_headers, shed_status, shed_body, shed_headers = run(main())
        assert health["request_id"] == health_headers["x-request-id"]
        assert shed_status == 503
        assert shed_body["request_id"] == shed_headers["x-request-id"]

    def test_retry_after_rounds_up_never_to_zero(self):
        """A 0.4s backend estimate must surface as Retry-After: 1 — an
        integer 0 would tell clients to hammer a saturated server."""

        async def main():
            server = AlignmentServer(
                engine=ScriptableEngine(delay=0.2),
                batch_size=1,
                flush_interval=0.001,
                max_pending=1,
            )
            server.suggested_retry_after = lambda: 0.4
            async with AlignmentHTTPServer(server) as front:
                busy = await HttpClient.connect(front)
                probe = await HttpClient.connect(front)
                slow = asyncio.create_task(
                    busy.request("POST", "/v1/scan", SCAN)
                )
                for _ in range(200):
                    await asyncio.sleep(0.005)
                    if server.saturated:
                        break
                status, body, headers = await probe.request(
                    "POST", "/v1/scan", SCAN
                )
                await slow
                busy.close()
                probe.close()
                return status, body, headers

        status, body, headers = run(main())
        assert status == 503
        assert headers["retry-after"] == "1"
        assert body["retry_after"] == pytest.approx(0.4)


class TestCachePath:
    def test_cache_hit_records_no_engine_span(self):
        async def main():
            server = AlignmentServer(
                engine="pure",
                batch_size=1,
                flush_interval=0.001,
                cache=True,
            )
            async with AlignmentHTTPServer(server) as front:
                client = await HttpClient.connect(front)
                _, _, first = await client.request("POST", "/v1/scan", SCAN)
                _, _, second = await client.request("POST", "/v1/scan", SCAN)
                _, cold, _ = await client.request(
                    "GET", f"/v1/trace/{first['x-request-id']}"
                )
                _, warm, _ = await client.request(
                    "GET", f"/v1/trace/{second['x-request-id']}"
                )
                client.close()
                return cold, warm

        cold, warm = run(main())
        (cold_lookup,) = spans_named(cold, "cache_lookup")
        assert cold_lookup["outcome"] == "miss"
        assert spans_named(cold, "engine")
        (warm_lookup,) = spans_named(warm, "cache_lookup")
        assert warm_lookup["outcome"] == "hit"
        # The hit never reached the batch queue or the engine.
        assert not spans_named(warm, "engine")
        assert not spans_named(warm, "queue_wait")


class TestHedgedTraces:
    def test_hedge_attempts_share_one_trace_and_loser_is_cancelled(self):
        async def main():
            hung = ScriptableEngine()
            hung.hang = threading.Event()
            healthy = ScriptableEngine()
            front = make_cluster_front(
                [hung, healthy], hedge=True, max_hedge_delay=0.05
            )
            async with front:
                client = await HttpClient.connect(front)
                status, _, headers = await client.request(
                    "POST", "/v1/scan", SCAN
                )
                hung.hang.set()
                # Give the loser's reap a tick to close its span.
                await asyncio.sleep(0.05)
                _, trace, _ = await client.request(
                    "GET", f"/v1/trace/{headers['x-request-id']}"
                )
                client.close()
                return status, trace

        status, trace = run(main())
        assert status == 200
        attempts = spans_named(trace, "attempt")
        assert len(attempts) == 2
        outcomes = sorted(span["outcome"] for span in attempts)
        assert outcomes == ["cancelled", "ok"]
        replicas = {span["attrs"]["replica"] for span in attempts}
        assert len(replicas) == 2  # two distinct replicas, one trace
        (hedge_wait,) = spans_named(trace, "hedge_wait")
        assert hedge_wait["outcome"] == "hedge_won"

    def test_slow_hedged_request_breakdown_accounts_for_the_latency(self):
        """Acceptance: the trace of a deliberately slow hedged request
        must explain >= 95% of its end-to-end wall time."""

        async def main():
            slow = ScriptableEngine(delay=0.25)
            hedge = ScriptableEngine(delay=0.05)
            front = make_cluster_front(
                [slow, hedge], hedge=True, max_hedge_delay=0.05
            )
            async with front:
                client = await HttpClient.connect(front)
                started = time.monotonic()
                status, _, headers = await client.request(
                    "POST", "/v1/scan", SCAN
                )
                elapsed = time.monotonic() - started
                await asyncio.sleep(0.3)  # let the loser finish reaping
                _, trace, _ = await client.request(
                    "GET", f"/v1/trace/{headers['x-request-id']}"
                )
                client.close()
                return status, elapsed, trace

        status, elapsed, trace = run(main())
        assert status == 200
        assert trace["complete"] is True
        assert trace["accounted_fraction"] >= 0.95
        # The trace's own clock must agree with the observed latency.
        assert trace["duration_ms"] == pytest.approx(
            elapsed * 1e3, rel=0.5
        )


class TestRetriedTraces:
    def test_one_attempt_span_per_retry_and_exactly_one_answer(self):
        async def main():
            flaky = ScriptableEngine()
            flaky.failures.append(RuntimeError("transient"))
            backup = ScriptableEngine()
            front = make_cluster_front(
                [flaky, backup], hedge=False, max_attempts=2
            )
            async with front:
                client = await HttpClient.connect(front)
                status, body, headers = await client.request(
                    "POST", "/v1/scan", SCAN
                )
                _, trace, _ = await client.request(
                    "GET", f"/v1/trace/{headers['x-request-id']}"
                )
                client.close()
                return status, body, trace, flaky.calls + backup.calls

        status, body, trace, total_calls = run(main())
        assert status == 200
        assert body["matches"]
        attempts = spans_named(trace, "attempt")
        assert [span["outcome"] for span in attempts] == ["failed", "ok"]
        assert total_calls == 2  # retried exactly once, answered once


class TestShardedTraces:
    def test_per_shard_timings_ride_the_engine_span(self):
        async def main():
            engine = ShardedEngine(workers=2, inner="pure", min_batch=1)
            server = AlignmentServer(
                engine=engine, batch_size=4, flush_interval=0.01
            )
            async with AlignmentHTTPServer(server) as front:
                clients = [await HttpClient.connect(front) for _ in range(4)]
                responses = await asyncio.gather(
                    *(
                        client.request(
                            "POST",
                            "/v1/scan",
                            {"text": "ACGTACGTACGT", "pattern": "ACGT", "k": 1},
                        )
                        for client in clients
                    )
                )
                traces = []
                for _, _, headers in responses:
                    _, trace, _ = await clients[0].request(
                        "GET", f"/v1/trace/{headers['x-request-id']}"
                    )
                    traces.append(trace)
                for client in clients:
                    client.close()
                return responses, traces

        responses, traces = run(main())
        assert all(status == 200 for status, _, _ in responses)
        sharded = [
            span
            for trace in traces
            for span in spans_named(trace, "engine")
            if "shards" in span.get("attrs", {})
        ]
        assert sharded, "no engine span carried per-shard timings"
        for span in sharded:
            timings = span["attrs"]["shards"]
            # Per-shard wall times crossed the IPC boundary and merged:
            # every shard reports its job count and compute seconds, and
            # the shards together cover the whole batch.
            assert all(t["seconds"] >= 0.0 for t in timings)
            assert all(t["jobs"] >= 1 for t in timings)
            assert sum(t["jobs"] for t in timings) == span["attrs"]["batch"]
