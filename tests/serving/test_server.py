"""Behavior tests for the asyncio alignment server.

The server must be a transparent batching layer: every request resolves to
exactly what a direct engine call would return, regardless of how requests
interleave, while the flush policy (size or deadline), the backpressure
bound, and shutdown all behave as documented. Tests drive real event loops
via ``asyncio.run`` — no extra pytest plugins needed.
"""

import asyncio
import random

import pytest

from repro.core.aligner import GenAsmAligner
from repro.engine import PurePythonEngine, get_engine
from repro.mapping.pipeline import make_genasm_mapper
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import illumina_profile, simulate_reads
from repro.serving import AlignmentServer, ServerClosedError, serve_requests

PURE = PurePythonEngine()


def random_pairs(count, seed, text_len=(30, 90), pattern_len=(10, 80)):
    rng = random.Random(seed)
    return [
        (
            "".join(rng.choice("ACGT") for _ in range(rng.randint(*text_len))),
            "".join(
                rng.choice("ACGT") for _ in range(rng.randint(*pattern_len))
            ),
        )
        for _ in range(count)
    ]


class TestRequestCorrectness:
    def test_edit_distance_matches_engine(self):
        pairs = random_pairs(40, seed=0xE1)
        k = 8
        expected = PURE.edit_distance_batch(pairs, k)
        got = asyncio.run(
            serve_requests(pairs, k, engine="pure", batch_size=16)
        )
        assert got == expected

    def test_scan_and_align_match_direct_calls(self):
        pairs = random_pairs(12, seed=0xE2)
        k = 5
        aligner = GenAsmAligner(engine=PURE)
        expected_scans = PURE.scan_batch(pairs, k)
        expected_aligns = [aligner.align(t, p) for t, p in pairs]

        async def run():
            async with AlignmentServer(engine="pure", batch_size=8) as server:
                scans = await asyncio.gather(
                    *(server.scan(t, p, k) for t, p in pairs)
                )
                aligns = await asyncio.gather(
                    *(server.align(t, p) for t, p in pairs)
                )
                return scans, aligns

        scans, aligns = asyncio.run(run())
        assert list(scans) == expected_scans
        for exp, act in zip(expected_aligns, aligns):
            assert str(exp.cigar) == str(act.cigar)
            assert exp.edit_distance == act.edit_distance

    def test_mixed_kinds_and_keys_in_one_flush(self):
        """Different (kind, k) groups sharing a flush each get one call."""
        pairs = random_pairs(6, seed=0xE3)

        async def run():
            async with AlignmentServer(
                engine="pure", batch_size=64, flush_interval=0.01
            ) as server:
                results = await asyncio.gather(
                    server.edit_distance(*pairs[0], 2),
                    server.edit_distance(*pairs[1], 7),
                    server.scan(*pairs[2], 3),
                    server.scan(*pairs[3], 3, first_match_only=True),
                    server.align(*pairs[4]),
                )
                return results, server.stats

        results, stats = asyncio.run(run())
        assert results[0] == PURE.edit_distance_batch([pairs[0]], 2)[0]
        assert results[1] == PURE.edit_distance_batch([pairs[1]], 7)[0]
        assert results[2] == PURE.scan_batch([pairs[2]], 3)[0]
        assert stats.flushes == 1
        assert stats.engine_calls == 5  # five distinct (kind, key) groups

    def test_engine_error_propagates_to_caller(self):
        async def run():
            async with AlignmentServer(engine="pure", batch_size=4) as server:
                with pytest.raises(ValueError):
                    await server.scan("ACGT", "ACGT", -1)
                # Server stays usable after a failed batch.
                return await server.edit_distance("ACGTACGT", "ACGT", 2)

        assert asyncio.run(run()) == 0


class TestFlushPolicy:
    def test_size_flush_fires_at_batch_size(self):
        pairs = random_pairs(32, seed=0xF1)

        async def run():
            # A flush interval long enough that only size flushes happen.
            async with AlignmentServer(
                engine="pure", batch_size=8, flush_interval=30.0
            ) as server:
                await asyncio.gather(
                    *(server.edit_distance(t, p, 4) for t, p in pairs)
                )
                return server.stats

        stats = asyncio.run(run())
        assert stats.requests == 32
        assert stats.size_flushes >= 1
        assert stats.max_batch >= 8

    def test_deadline_flush_fires_below_batch_size(self):
        pairs = random_pairs(3, seed=0xF2)

        async def run():
            async with AlignmentServer(
                engine="pure", batch_size=64, flush_interval=0.005
            ) as server:
                results = await asyncio.gather(
                    *(server.edit_distance(t, p, 4) for t, p in pairs)
                )
                return results, server.stats

        results, stats = asyncio.run(run())
        assert len(results) == 3
        assert stats.deadline_flushes >= 1
        assert stats.size_flushes == 0


class TestConcurrencyAndBackpressure:
    def test_sustains_64_concurrent_clients(self):
        pairs = random_pairs(256, seed=0xF3)
        k = 6
        expected = PURE.edit_distance_batch(pairs, k)

        async def client(server, own):
            out = []
            for text, pattern in own:
                out.append(await server.edit_distance(text, pattern, k))
            return out

        async def run():
            async with AlignmentServer(
                engine="pure",
                batch_size=32,
                flush_interval=0.002,
                max_pending=128,
            ) as server:
                shards = [pairs[c::64] for c in range(64)]
                got = await asyncio.gather(
                    *(client(server, shard) for shard in shards)
                )
                return got, server.stats

        got, stats = asyncio.run(run())
        flat = {}
        for c, shard_results in enumerate(got):
            for i, value in enumerate(shard_results):
                flat[c + 64 * i] = value
        assert [flat[i] for i in range(len(pairs))] == expected
        assert stats.served == len(pairs)
        # Re-batching must actually happen under concurrency.
        assert stats.mean_batch > 1.0

    def test_pending_queue_is_bounded(self):
        """The queue never exceeds max_pending even with a flood of clients."""
        pairs = random_pairs(120, seed=0xF4)
        observed = []

        async def run():
            server = AlignmentServer(
                engine="pure",
                batch_size=8,
                flush_interval=0.001,
                max_pending=16,
            )

            async def spy_client(text, pattern):
                observed.append(server.pending)
                return await server.edit_distance(text, pattern, 4)

            async with server:
                await asyncio.gather(*(spy_client(t, p) for t, p in pairs))
            return server

        server = asyncio.run(run())
        assert max(observed) <= 16
        assert server.stats.served == len(pairs)

    def test_max_pending_must_cover_batch_size(self):
        with pytest.raises(ValueError):
            AlignmentServer(engine="pure", batch_size=64, max_pending=8)


class TestShutdown:
    def test_stop_drains_queued_requests(self):
        async def run():
            server = AlignmentServer(
                engine="pure", batch_size=64, flush_interval=60.0
            )
            task = asyncio.create_task(
                server.edit_distance("ACGTACGT", "ACGT", 2)
            )
            await asyncio.sleep(0)  # let the request enqueue
            assert server.pending == 1
            await server.stop()
            return await task, server.stats

        result, stats = asyncio.run(run())
        assert result == 0
        assert stats.final_flushes == 1

    def test_submit_after_stop_rejected(self):
        async def run():
            server = AlignmentServer(engine="pure")
            await server.stop()
            with pytest.raises(ServerClosedError):
                await server.edit_distance("ACGT", "ACGT", 1)

        asyncio.run(run())

    def test_stop_is_idempotent(self):
        async def run():
            async with AlignmentServer(engine="pure") as server:
                await server.edit_distance("ACGT", "ACGT", 1)
            await server.stop()  # second stop (after __aexit__) is a no-op

        asyncio.run(run())


class TestMapServing:
    @pytest.fixture(scope="class")
    def genome(self):
        return synthesize_genome(6_000, seed=5, name="servref")

    @pytest.fixture(scope="class")
    def reads(self, genome):
        return simulate_reads(
            genome,
            count=10,
            read_length=80,
            profile=illumina_profile(0.04),
            seed=17,
        )

    def test_map_read_requires_mapper(self):
        async def run():
            async with AlignmentServer(engine="pure") as server:
                with pytest.raises(RuntimeError):
                    await server.map_read("r", "ACGT")

        asyncio.run(run())

    def test_served_mapping_matches_direct(self, genome, reads):
        pairs = [(r.name, r.sequence) for r in reads]
        direct = make_genasm_mapper(genome)
        expected = [direct.map_read(n, s) for n, s in pairs]

        served_mapper = make_genasm_mapper(genome)
        results = asyncio.run(
            served_mapper.map_reads_concurrent(
                pairs, batch_size=4, flush_interval=0.001
            )
        )
        for exp, act in zip(expected, results):
            assert exp.record.to_line() == act.record.to_line()
            assert exp.candidate_position == act.candidate_position
            assert exp.reverse == act.reverse
        assert direct.stats == served_mapper.stats

    def test_server_uses_mapper_engine_by_default(self, genome):
        mapper = make_genasm_mapper(genome, engine="pure")
        server = AlignmentServer(mapper=mapper)
        assert isinstance(server.engine, PurePythonEngine)


class TestServerConstruction:
    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            AlignmentServer(engine="pure", batch_size=0)

    def test_invalid_flush_interval(self):
        with pytest.raises(ValueError):
            AlignmentServer(engine="pure", flush_interval=-1.0)

    def test_engine_spec_resolution(self):
        server = AlignmentServer(engine=get_engine("pure"))
        assert isinstance(server.engine, PurePythonEngine)


class TestAdaptiveFlush:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            AlignmentServer(
                engine="pure", adaptive_flush=True, arrival_smoothing=0.0
            )
        with pytest.raises(ValueError):
            AlignmentServer(
                engine="pure",
                adaptive_flush=True,
                min_flush_interval=0.01,
                max_flush_interval=0.001,
            )
        with pytest.raises(ValueError):
            AlignmentServer(
                engine="pure", adaptive_flush=True, min_flush_interval=-1.0
            )

    def test_fixed_server_reports_configured_interval(self):
        server = AlignmentServer(engine="pure", flush_interval=0.007)
        assert server.current_flush_interval == 0.007

    def test_adaptive_interval_tracks_arrivals_within_bounds(self):
        async def run():
            async with AlignmentServer(
                engine="pure",
                batch_size=4,
                flush_interval=0.002,
                adaptive_flush=True,
                min_flush_interval=0.001,
                max_flush_interval=0.05,
            ) as server:
                # A dense burst: tiny inter-arrival gaps.
                await asyncio.gather(
                    *(
                        server.edit_distance("ACGTACGT", "ACGT", 2)
                        for _ in range(16)
                    )
                )
                dense = server.current_flush_interval
                # Sparse arrivals: large gaps push the window to the max.
                for _ in range(3):
                    await asyncio.sleep(0.03)
                    await server.edit_distance("ACGTACGT", "ACGT", 2)
                sparse = server.current_flush_interval
                return dense, sparse, server.stats

        dense, sparse, stats = asyncio.run(run())
        assert 0.001 <= dense <= 0.05
        assert 0.001 <= sparse <= 0.05
        # Sparse traffic must widen the window relative to a dense burst.
        assert sparse >= dense
        assert stats.served == 19

    def test_adaptive_defaults_derive_from_flush_interval(self):
        server = AlignmentServer(
            engine="pure", flush_interval=0.008, adaptive_flush=True
        )
        assert server.min_flush_interval == pytest.approx(0.002)
        assert server.max_flush_interval == pytest.approx(0.032)

    def test_results_identical_with_adaptive_flush(self):
        pairs = random_pairs(48, seed=0xAD)
        k = 5
        expected = PURE.edit_distance_batch(pairs, k)

        async def run():
            async with AlignmentServer(
                engine="pure",
                batch_size=8,
                flush_interval=0.002,
                adaptive_flush=True,
            ) as server:
                return list(
                    await asyncio.gather(
                        *(server.edit_distance(t, p, k) for t, p in pairs)
                    )
                )

        assert asyncio.run(run()) == expected


class TestLoadVisibility:
    def test_in_flight_and_saturated_reflect_slots(self):
        async def run():
            server = AlignmentServer(
                engine="pure", batch_size=2, max_pending=2
            )
            assert server.in_flight == 0
            assert not server.saturated
            async with server:
                await asyncio.gather(
                    *(
                        server.edit_distance("ACGTACGT", "ACGT", 2)
                        for _ in range(6)
                    )
                )
            assert server.in_flight == 0
            return server

        server = asyncio.run(run())
        assert server.stats.served == 6
