"""Control-loop tests for the cluster autoscaler.

Every rule is driven synchronously with an injected clock — no sleeping
through real cooldowns — and actions are observed on the cluster itself
(replica count, draining states), not just in the decision log.
"""

import asyncio
import time

import pytest

from repro.engine import PurePythonEngine
from repro.serving import (
    AlignmentCluster,
    AlignmentServer,
    ClusterAutoscaler,
    LatencyHistogram,
    MetricFamily,
    MetricsRegistry,
)


def run(coro):
    return asyncio.run(coro)


def make_cluster(**kwargs):
    kwargs.setdefault("replicas", 1)
    kwargs.setdefault("engine", "pure")
    kwargs.setdefault("batch_size", 4)
    kwargs.setdefault("flush_interval", 0.001)
    return AlignmentCluster(**kwargs)


def live_count(cluster):
    return sum(1 for r in cluster.replicas if r.live)


class TestScaleUpTriggers:
    def test_shedding_adds_a_replica(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, max_replicas=4, cooldown=0.0
                )
                cluster.shed += 1  # one shed request in the window
                decision = await scaler.step()
                assert decision.action == "scale_up"
                assert "shed" in decision.reason
                assert live_count(cluster) == 2

        run(main())

    def test_shed_tolerance_suppresses_the_trigger(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, shed_tolerance=5, cooldown=0.0
                )
                cluster.shed += 5  # at, not over, tolerance
                decision = await scaler.step()
                assert decision.action == "hold"

        run(main())

    def test_shed_counter_is_windowed_not_lifetime(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, max_replicas=8, cooldown=0.0
                )
                cluster.shed += 3
                assert (await scaler.step()).action == "scale_up"
                # Lifetime shed is still 3, but the *window* saw none:
                # the old burst must not trigger again forever.
                decision = await scaler.step()
                assert decision.shed_delta == 0
                assert decision.action != "scale_up"

        run(main())

    def test_window_p99_over_target_scales_up(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster,
                    target_p99_ms=50.0,
                    cooldown=0.0,
                    scale_down_utilization=0.0,  # rule disabled
                )
                # Inject a slow window directly into the merged stream.
                for _ in range(20):
                    cluster.replicas[0].server.stats.latency.record(0.2)
                decision = await scaler.step()
                assert decision.action == "scale_up"
                assert "p99" in decision.reason
                assert decision.window_p99_ms > 50.0
                # Next window has no new samples: latency rule is quiet.
                decision = await scaler.step()
                assert decision.action == "hold"

        run(main())

    def test_utilization_over_threshold_scales_up(self):
        async def main():
            # A server whose queue we can fill without it flushing.
            server = AlignmentServer(
                engine=PurePythonEngine(),
                batch_size=10,
                flush_interval=60.0,
                max_pending=10,
            )
            cluster = AlignmentCluster(servers=[server])
            async with cluster:
                scaler = ClusterAutoscaler(
                    cluster,
                    scale_up_utilization=0.5,
                    utilization_smoothing=1.0,  # react on one sample
                    cooldown=0.0,
                )
                tasks = [
                    asyncio.ensure_future(
                        cluster.scan("ACGTACGTACGT", "ACGT", 1)
                    )
                    for _ in range(9)
                ]
                await asyncio.sleep(0.02)  # all nine queued
                decision = scaler.evaluate()
                assert decision.utilization > 0.5
                # The trigger fired; a servers= cluster has no recipe to
                # grow from, so the loop logs the refusal and holds.
                assert decision.action == "hold"
                assert "cannot scale up" in decision.reason
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

        run(main())


class TestBoundsAndCooldown:
    def test_never_grows_past_max_replicas(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, max_replicas=2, cooldown=0.0
                )
                cluster.shed += 1
                assert (await scaler.step()).action == "scale_up"
                cluster.shed += 1
                decision = await scaler.step()
                assert decision.action == "hold"
                assert "max_replicas" in decision.reason
                assert live_count(cluster) == 2

        run(main())

    def test_never_drains_below_min_replicas(self):
        async def main():
            async with make_cluster(replicas=2) as cluster:
                scaler = ClusterAutoscaler(
                    cluster,
                    min_replicas=2,
                    scale_down_utilization=0.9,
                    scale_up_utilization=0.95,
                    cooldown=0.0,
                )
                for _ in range(5):
                    decision = await scaler.step()
                    assert decision.action == "hold"
                assert live_count(cluster) == 2

        run(main())

    def test_cooldown_separates_actions(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, max_replicas=8, cooldown=10.0
                )
                now = time.monotonic()
                cluster.shed += 1
                assert (await scaler.step(now)).action == "scale_up"
                cluster.shed += 1  # still under pressure
                decision = await scaler.step(now + 1.0)
                assert decision.action == "hold"
                assert "cooldown" in decision.reason
                cluster.shed += 1
                decision = await scaler.step(now + 11.0)
                assert decision.action == "scale_up"
                assert live_count(cluster) == 3

        run(main())


class TestScaleDown:
    def test_idle_cluster_drains_to_min(self):
        async def main():
            async with make_cluster(replicas=3) as cluster:
                scaler = ClusterAutoscaler(
                    cluster,
                    min_replicas=1,
                    scale_down_utilization=0.25,
                    cooldown=0.0,
                )
                actions = [(await scaler.step()).action for _ in range(4)]
                assert actions.count("scale_down") == 2
                assert live_count(cluster) == 1
                # Drained replicas really stopped serving.
                assert sum(1 for r in cluster.replicas if r.stopped) == 2

        run(main())

    def test_drain_picks_the_least_loaded_replica(self):
        async def main():
            async with make_cluster(replicas=2) as cluster:
                cluster.replicas[0].dispatched = 50
                # Fake load on replica 0 via its real queue: occupy it.
                scaler = ClusterAutoscaler(
                    cluster, min_replicas=1, cooldown=0.0
                )
                decision = await scaler.step()
                assert decision.action == "scale_down"
                # Both idle -> either is "least loaded"; the drained one
                # is out of rotation, the survivor still serves.
                result = await cluster.scan("ACGTACGTACGT", "ACGT", 1)
                assert result is not None

        run(main())


class TestLifecycleAndIntrospection:
    def test_decision_log_surfaces_in_cluster_stats(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, max_replicas=4, cooldown=0.0, decision_log_size=2
                )
                cluster.shed += 1
                await scaler.step()
                await scaler.step()
                await scaler.step()
                payload = cluster.stats_payload()
                block = payload["autoscaler"]
                assert block["scale_ups"] == 1
                assert len(block["decisions"]) == 2  # bounded log
                assert {"action", "reason", "at", "replicas"} <= set(
                    block["decisions"][-1]
                )

        run(main())

    def test_background_loop_scales_up_and_stops(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster, interval=0.01, max_replicas=4, cooldown=0.0
                )
                scaler.start()
                scaler.start()  # idempotent
                cluster.shed += 1
                for _ in range(100):
                    if live_count(cluster) == 2:
                        break
                    await asyncio.sleep(0.01)
                assert live_count(cluster) == 2
                await scaler.stop()
                await scaler.stop()  # idempotent
                assert cluster.stats_payload()["autoscaler"]["running"] is False

        run(main())

    def test_add_replica_requires_a_recipe(self):
        async def main():
            server = AlignmentServer(engine=PurePythonEngine())
            cluster = AlignmentCluster(servers=[server])
            async with cluster:
                with pytest.raises(RuntimeError, match="add_replica"):
                    cluster.add_replica()
                # Explicit server still works.
                replica = cluster.add_replica(
                    server=AlignmentServer(engine=PurePythonEngine())
                )
                assert replica.live
                assert len(cluster.replicas) == 2

        run(main())

    def test_new_replica_serves_real_traffic(self):
        async def main():
            async with make_cluster(policy="round_robin") as cluster:
                before = await cluster.scan("ACGTACGTACGT", "ACGT", 1)
                replica = cluster.add_replica()
                for _ in range(4):
                    assert (
                        await cluster.scan("ACGTACGTACGT", "ACGT", 1) == before
                    )
                assert replica.completed > 0  # rotation reached it

        run(main())

    def test_knob_validation(self):
        async def main():
            async with make_cluster() as cluster:
                with pytest.raises(ValueError):
                    ClusterAutoscaler(cluster, min_replicas=0)
                with pytest.raises(ValueError):
                    ClusterAutoscaler(cluster, min_replicas=3, max_replicas=2)
                with pytest.raises(ValueError):
                    ClusterAutoscaler(cluster, interval=0.0)
                with pytest.raises(ValueError):
                    ClusterAutoscaler(cluster, cooldown=-1.0)
                with pytest.raises(ValueError):
                    ClusterAutoscaler(cluster, utilization_smoothing=0.0)
                with pytest.raises(ValueError):
                    ClusterAutoscaler(
                        cluster,
                        scale_up_utilization=0.2,
                        scale_down_utilization=0.3,
                    )

        run(main())


class TestPerEndpointSignals:
    """The registry-backed latency signal: per-endpoint p99, worst wins.

    The failure mode this guards: endpoints sharing one histogram let a
    flood of cheap fast requests (``/v1/scan``) statistically bury a
    degraded expensive endpoint (``/v1/align``) — the merged p99 stays
    under target while align users suffer. With a registry attached the
    autoscaler windows each endpoint's series separately.
    """

    @staticmethod
    def _mixed_load(scan_hist, align_hist, cluster=None):
        # 1000 fast scans vs 10 slow aligns: merged, the p99 sits in the
        # fast mass; per-endpoint, align's p99 is unmistakably degraded.
        merged = (
            cluster.replicas[0].server.stats.latency
            if cluster is not None
            else None
        )
        for _ in range(1000):
            scan_hist.record(0.001)
            if merged is not None:
                merged.record(0.001)
        for _ in range(10):
            align_hist.record(0.4)
            if merged is not None:
                merged.record(0.4)

    @staticmethod
    def _endpoint_registry(scan_hist, align_hist):
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [
                MetricFamily(
                    "genasm_http_request_duration_seconds", "histogram"
                )
                .add_histogram(scan_hist, endpoint="/v1/scan")
                .add_histogram(align_hist, endpoint="/v1/align")
            ]
        )
        return registry

    def test_scan_burst_cannot_mask_a_degraded_align_p99(self):
        async def main():
            scan_hist, align_hist = LatencyHistogram(), LatencyHistogram()
            async with make_cluster() as cluster:
                registry = self._endpoint_registry(scan_hist, align_hist)
                scaler = ClusterAutoscaler(
                    cluster,
                    registry=registry,
                    target_p99_ms=50.0,
                    max_replicas=4,
                    cooldown=0.0,
                    scale_down_utilization=0.0,
                )
                self._mixed_load(scan_hist, align_hist, cluster)
                decision = await scaler.step()
                assert decision.action == "scale_up"
                assert decision.p99_endpoint == "/v1/align"
                assert "/v1/align" in decision.reason
                assert decision.window_p99_ms > 50.0
                # The window advanced per endpoint: no new samples means
                # the same burst cannot trigger again forever.
                decision = await scaler.step()
                assert decision.action == "hold"

        run(main())

    def test_the_same_load_is_masked_without_a_registry(self):
        """Contrast case proving the masking is real: the identical
        traffic through the merged cluster-wide histogram stays under
        target, so the fallback signal holds."""

        async def main():
            scan_hist, align_hist = LatencyHistogram(), LatencyHistogram()
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster,
                    target_p99_ms=50.0,
                    max_replicas=4,
                    cooldown=0.0,
                    scale_down_utilization=0.0,
                )
                self._mixed_load(scan_hist, align_hist, cluster)
                decision = await scaler.step()
                assert decision.action == "hold"
                assert decision.window_p99_ms < 50.0

        run(main())

    def test_registry_without_series_falls_back_to_cluster_histogram(self):
        async def main():
            async with make_cluster() as cluster:
                scaler = ClusterAutoscaler(
                    cluster,
                    registry=MetricsRegistry(),  # no collectors yet
                    target_p99_ms=50.0,
                    max_replicas=4,
                    cooldown=0.0,
                    scale_down_utilization=0.0,
                )
                for _ in range(20):
                    cluster.replicas[0].server.stats.latency.record(0.2)
                decision = await scaler.step()
                assert decision.action == "scale_up"
                assert decision.p99_endpoint is None

        run(main())
