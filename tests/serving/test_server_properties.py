"""Hypothesis properties for the serving layer.

The server's core contract is *transparency*: whatever the batch size,
flush deadline (fixed or adaptive), submission order, or request mix,
every request resolves to exactly what a direct engine call returns. These
tests let Hypothesis pick the traffic and the flush policy, then assert
the batching was unobservable.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.core.aligner import GenAsmAligner
from repro.engine import PurePythonEngine
from repro.serving import AlignmentServer

PURE = PurePythonEngine()
ALIGNER = GenAsmAligner(engine=PURE)

dna = st.text(alphabet="ACGT", min_size=1, max_size=32)
texts = st.text(alphabet="ACGTN", min_size=0, max_size=48)

pair = st.tuples(texts, dna)

flush_policies = st.fixed_dictionaries(
    {
        "batch_size": st.sampled_from([1, 2, 3, 8, 64]),
        "flush_interval": st.sampled_from([0.0, 0.0005, 0.003]),
        "adaptive_flush": st.booleans(),
    }
)


@settings(max_examples=15, deadline=None)
@given(
    pairs=st.lists(pair, min_size=1, max_size=10),
    k=st.integers(min_value=0, max_value=6),
    policy=flush_policies,
)
def test_edit_distances_independent_of_flush_policy(pairs, k, policy):
    expected = PURE.edit_distance_batch(pairs, k)

    async def main():
        async with AlignmentServer(engine="pure", **policy) as server:
            return list(
                await asyncio.gather(
                    *(server.edit_distance(t, p, k) for t, p in pairs)
                )
            )

    assert asyncio.run(main()) == expected


@settings(max_examples=12, deadline=None)
@given(
    requests=st.lists(
        st.tuples(st.sampled_from(["scan", "edit_distance", "align"]), pair),
        min_size=1,
        max_size=8,
    ),
    k=st.integers(min_value=0, max_value=5),
    policy=flush_policies,
    order=st.randoms(use_true_random=False),
)
def test_mixed_interleavings_match_direct_calls(requests, k, policy, order):
    """Submission order and request mix never change any single result."""
    expected = []
    for op, (text, pattern) in requests:
        if op == "scan":
            expected.append(PURE.scan_batch([(text, pattern)], k)[0])
        elif op == "edit_distance":
            expected.append(PURE.edit_distance_batch([(text, pattern)], k)[0])
        else:
            alignment = ALIGNER.align(text, pattern)
            expected.append(
                (str(alignment.cigar), alignment.edit_distance)
            )

    submission_order = list(range(len(requests)))
    order.shuffle(submission_order)

    async def main():
        async with AlignmentServer(engine="pure", **policy) as server:
            tasks: dict[int, asyncio.Task] = {}
            for index in submission_order:
                op, (text, pattern) = requests[index]
                if op == "scan":
                    coro = server.scan(text, pattern, k)
                elif op == "edit_distance":
                    coro = server.edit_distance(text, pattern, k)
                else:
                    coro = server.align(text, pattern)
                tasks[index] = asyncio.create_task(coro)
                if order.random() < 0.3:
                    await asyncio.sleep(0)  # vary how submissions interleave
            return [
                await tasks[index] for index in range(len(requests))
            ]

    results = asyncio.run(main())
    for (op, _), got, want in zip(requests, results, expected):
        if op == "align":
            assert (str(got.cigar), got.edit_distance) == want
        else:
            assert got == want


@settings(max_examples=10, deadline=None)
@given(
    pairs=st.lists(pair, min_size=2, max_size=12),
    k=st.integers(min_value=0, max_value=4),
    min_ms=st.sampled_from([0.0, 0.5]),
    max_ms=st.sampled_from([2.0, 20.0]),
)
def test_adaptive_deadline_stays_within_bounds(pairs, k, min_ms, max_ms):
    """The EWMA deadline never escapes [min, max], whatever the traffic."""

    async def main():
        async with AlignmentServer(
            engine="pure",
            batch_size=4,
            flush_interval=0.001,
            adaptive_flush=True,
            min_flush_interval=min_ms / 1e3,
            max_flush_interval=max_ms / 1e3,
        ) as server:
            observed = []
            for text, pattern in pairs:
                await server.edit_distance(text, pattern, k)
                observed.append(server.current_flush_interval)
            return observed

    for interval in asyncio.run(main()):
        assert min_ms / 1e3 <= interval <= max_ms / 1e3


@settings(max_examples=10, deadline=None)
@given(
    pairs=st.lists(pair, min_size=1, max_size=10),
    k=st.integers(min_value=0, max_value=4),
)
def test_adaptive_and_fixed_servers_agree(pairs, k):
    """Adaptive flushing changes timing, never results."""

    async def run(adaptive):
        async with AlignmentServer(
            engine="pure",
            batch_size=3,
            flush_interval=0.001,
            adaptive_flush=adaptive,
        ) as server:
            return list(
                await asyncio.gather(
                    *(server.edit_distance(t, p, k) for t, p in pairs)
                )
            )

    assert asyncio.run(run(True)) == asyncio.run(run(False))
