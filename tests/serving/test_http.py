"""Wire-level tests for the HTTP/JSON front.

Every test drives the complete path — HTTP parsing, routing, validation,
the batching alignment server, response framing — through an in-memory
``socket.socketpair`` connection (:func:`open_memory_connection`), so no
free TCP port is needed. The one exception binds an ephemeral localhost
port to prove the real-socket path works identically.
"""

import asyncio
import json
import time

import pytest

from repro.engine import PurePythonEngine
from repro.mapping.pipeline import make_genasm_mapper
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import illumina_profile, simulate_reads
from repro.serving import (
    AlignmentCluster,
    AlignmentHTTPServer,
    AlignmentServer,
    ClusterAutoscaler,
    MetricFamily,
    MetricsRegistry,
    open_memory_connection,
    parse_prometheus_text,
    serve_http,
)

PURE = PurePythonEngine()


class HttpClient:
    """Minimal HTTP/1.1 client over one stream pair (keep-alive capable)."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, front):
        return cls(*await open_memory_connection(front))

    async def request(self, method, path, body=None, *, close=False, raw=None):
        payload = raw if raw is not None else (
            b"" if body is None else json.dumps(body).encode()
        )
        headers = [f"{method} {path} HTTP/1.1", "Host: test"]
        if payload:
            headers.append(f"Content-Length: {len(payload)}")
        if close:
            headers.append("Connection: close")
        self.writer.write(
            ("\r\n".join(headers) + "\r\n\r\n").encode() + payload
        )
        await self.writer.drain()
        return await self.read_response()

    async def read_response(self):
        status_line = await self.reader.readline()
        assert status_line, "connection closed before a response arrived"
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        return status, (json.loads(body) if body else None), headers

    def close(self):
        self.writer.close()


def run(coro):
    return asyncio.run(coro)


async def make_front(**server_kwargs):
    server_kwargs.setdefault("engine", "pure")
    server_kwargs.setdefault("batch_size", 8)
    server_kwargs.setdefault("flush_interval", 0.002)
    server = AlignmentServer(**server_kwargs)
    return AlignmentHTTPServer(server)


class SlowScanEngine(PurePythonEngine):
    """Pure backend whose scans block the worker thread measurably."""

    def __init__(self, delay=0.15):
        self.delay = delay

    def scan_batch(self, pairs, k, **kwargs):
        time.sleep(self.delay)
        return super().scan_batch(pairs, k, **kwargs)


class TestHappyPaths:
    def test_edit_distance_scan_align_match_direct(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                ed_status, ed, _ = await client.request(
                    "POST",
                    "/v1/edit_distance",
                    {"text": "ACGTACGT", "pattern": "ACGGT", "k": 3},
                )
                scan_status, scan, _ = await client.request(
                    "POST",
                    "/v1/scan",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                )
                al_status, al, _ = await client.request(
                    "POST",
                    "/v1/align",
                    {"text": "ACGTACGT", "pattern": "ACGGT"},
                )
                client.close()
                return (ed_status, ed), (scan_status, scan), (al_status, al)

        (ed_status, ed), (scan_status, scan), (al_status, al) = run(main())
        assert ed_status == scan_status == al_status == 200
        assert ed["distance"] == PURE.edit_distance_batch(
            [("ACGTACGT", "ACGGT")], 3
        )[0]
        expected_scan = PURE.scan_batch([("ACGTACGT", "ACGT")], 1)[0]
        assert scan["matches"] == [
            {"start": m.start, "distance": m.distance} for m in expected_scan
        ]
        from repro.core.aligner import GenAsmAligner

        expected = GenAsmAligner(engine=PURE).align("ACGTACGT", "ACGGT")
        assert al["cigar"] == expected.cigar.to_sam()
        assert al["edit_distance"] == expected.edit_distance

    def test_distance_above_k_is_null(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/edit_distance",
                    {"text": "AAAAAAAA", "pattern": "TTTTTTTT", "k": 2},
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 200
        assert body["distance"] is None

    def test_map_endpoint_matches_direct_mapper(self):
        genome = synthesize_genome(6_000, seed=9, name="httpref")
        read = simulate_reads(
            genome,
            count=1,
            read_length=80,
            profile=illumina_profile(0.03),
            seed=3,
        )[0]
        direct = make_genasm_mapper(genome, engine="pure")
        expected = direct.map_read(read.name, read.sequence)

        async def main():
            mapper = make_genasm_mapper(genome, engine="pure")
            server = AlignmentServer(
                mapper=mapper, batch_size=4, flush_interval=0.001
            )
            async with AlignmentHTTPServer(server) as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/map",
                    {"name": read.name, "read": read.sequence},
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 200
        assert body["sam"] == expected.record.to_line()
        assert body["mapped"] is True
        assert body["position"] == expected.candidate_position

    def test_map_without_mapper_is_501(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST", "/v1/map", {"name": "r", "read": "ACGT"}
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 501
        assert "mapper" in body["error"]

    def test_real_tcp_port_serves_identically(self):
        async def main():
            front = await serve_http(
                port=0, engine="pure", batch_size=4, flush_interval=0.001
            )
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", front.port
                )
                client = HttpClient(reader, writer)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/edit_distance",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 2},
                    close=True,
                )
                client.close()
                return status, body
            finally:
                await front.stop()

        status, body = run(main())
        assert status == 200
        assert body["distance"] == 0

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                distances = []
                for _ in range(5):
                    status, body, headers = await client.request(
                        "POST",
                        "/v1/edit_distance",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 2},
                    )
                    assert status == 200
                    assert headers["connection"] == "keep-alive"
                    distances.append(body["distance"])
                client.close()
                return distances

        assert run(main()) == [0] * 5


class TestRejections:
    @pytest.mark.parametrize(
        "raw_body, expected_fragment",
        [
            (b"{not json", "invalid JSON"),
            (b"[1, 2, 3]", "JSON object"),
            (b"", "JSON object"),
        ],
    )
    def test_malformed_json_is_400(self, raw_body, expected_fragment):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST", "/v1/edit_distance", raw=raw_body
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 400
        assert expected_fragment in body["error"]

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"pattern": "ACGT", "k": 1}, "text"),
            ({"text": "ACGT", "k": 1}, "pattern"),
            ({"text": "ACGT", "pattern": "ACGT"}, "k"),
            ({"text": "ACGT", "pattern": "", "k": 1}, "non-empty"),
            ({"text": "ACGT", "pattern": "ACGT", "k": -1}, ">= 0"),
            ({"text": "ACGT", "pattern": "ACGT", "k": "3"}, "integer"),
            ({"text": "ACGT", "pattern": "ACGT", "k": True}, "integer"),
            ({"text": 7, "pattern": "ACGT", "k": 1}, "string"),
        ],
    )
    def test_field_validation_is_400(self, payload, fragment):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST", "/v1/edit_distance", payload
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 400
        assert fragment in body["error"]

    def test_engine_symbol_rejection_maps_to_400(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/edit_distance",
                    {"text": "ACGT", "pattern": "AZGT", "k": 1},
                )
                client.close()
                return status, body

        status, body = run(main())
        assert status == 400

    def test_oversize_payload_is_413(self):
        async def main():
            server = AlignmentServer(engine="pure", batch_size=4)
            front = AlignmentHTTPServer(server, max_body_bytes=256)
            async with front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/edit_distance",
                    {"text": "A" * 10_000, "pattern": "ACGT", "k": 1},
                )
                return status, body

        status, body = run(main())
        assert status == 413
        assert "256" in body["error"]

    def test_unknown_path_is_404_and_wrong_method_is_405(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                missing = await client.request("GET", "/v2/nothing")
                wrong = await client.request("GET", "/v1/align")
                client.close()
                return missing, wrong

        (s404, _, _), (s405, _, _) = run(main())
        assert s404 == 404
        assert s405 == 405

    def test_bad_content_length_is_400(self):
        async def main():
            async with await make_front() as front:
                reader, writer = await open_memory_connection(front)
                writer.write(
                    b"POST /v1/align HTTP/1.1\r\n"
                    b"Content-Length: banana\r\n\r\n"
                )
                await writer.drain()
                client = HttpClient(reader, writer)
                return await client.read_response()

        status, body, _ = run(main())
        assert status == 400
        assert "Content-Length" in body["error"]

    def test_malformed_request_line_is_400(self):
        async def main():
            async with await make_front() as front:
                reader, writer = await open_memory_connection(front)
                writer.write(b"NONSENSE\r\n\r\n")
                await writer.drain()
                client = HttpClient(reader, writer)
                return await client.read_response()

        status, body, _ = run(main())
        assert status == 400

    def test_chunked_transfer_encoding_is_501(self):
        """Unparsed chunked framing would desync the keep-alive stream."""

        async def main():
            async with await make_front() as front:
                reader, writer = await open_memory_connection(front)
                writer.write(
                    b"POST /v1/align HTTP/1.1\r\n"
                    b"Transfer-Encoding: chunked\r\n\r\n"
                    b"4\r\n{\"a\"\r\n0\r\n\r\n"
                )
                await writer.drain()
                client = HttpClient(reader, writer)
                return await client.read_response()

        status, body, _ = run(main())
        assert status == 501
        assert "Transfer-Encoding" in body["error"]

    def test_oversize_header_line_is_400_not_a_dropped_connection(self):
        """A header beyond the stream limit must still get a response."""

        async def main():
            async with await make_front() as front:
                reader, writer = await open_memory_connection(front)
                writer.write(
                    b"GET /healthz HTTP/1.1\r\n"
                    b"X-Big: " + b"a" * 80_000 + b"\r\n\r\n"
                )
                await writer.drain()
                client = HttpClient(reader, writer)
                return await client.read_response()

        status, body, _ = run(main())
        assert status == 400
        assert "too long" in body["error"]


class TestBackpressureAndHealth:
    def test_saturated_server_sheds_with_503(self):
        async def main():
            engine = SlowScanEngine(delay=0.2)
            server = AlignmentServer(
                engine=engine,
                batch_size=1,
                flush_interval=0.001,
                max_pending=1,
            )
            async with AlignmentHTTPServer(server) as front:
                busy = await HttpClient.connect(front)
                shed = await HttpClient.connect(front)
                first = asyncio.create_task(
                    busy.request(
                        "POST",
                        "/v1/scan",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                    )
                )
                # Wait until the slow scan actually owns the only slot.
                for _ in range(200):
                    await asyncio.sleep(0.005)
                    if server.saturated:
                        break
                assert server.saturated
                status_shed, body_shed, headers = await shed.request(
                    "POST",
                    "/v1/scan",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                )
                status_first, body_first, _ = await first
                busy.close()
                shed.close()
                return (status_shed, body_shed, headers), (
                    status_first,
                    body_first,
                )

        (status_shed, body_shed, headers), (status_first, body_first) = run(
            main()
        )
        assert status_shed == 503
        assert "capacity" in body_shed["error"]
        # Dynamic hint: integer delay-seconds on the wire, the precise
        # load-derived estimate in the body.
        assert int(headers["retry-after"]) >= 1
        assert 0 < body_shed["retry_after"] <= 60
        # The request that held the slot still completes correctly.
        assert status_first == 200
        assert body_first["matches"]

    def test_healthz_answers_under_load(self):
        async def main():
            engine = SlowScanEngine(delay=0.25)
            server = AlignmentServer(
                engine=engine,
                batch_size=1,
                flush_interval=0.001,
                max_pending=1,
            )
            async with AlignmentHTTPServer(server) as front:
                busy = await HttpClient.connect(front)
                probe = await HttpClient.connect(front)
                slow = asyncio.create_task(
                    busy.request(
                        "POST",
                        "/v1/scan",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                    )
                )
                for _ in range(200):
                    await asyncio.sleep(0.005)
                    if server.saturated:
                        break
                start = time.perf_counter()
                status, body, _ = await probe.request("GET", "/healthz")
                elapsed = time.perf_counter() - start
                await slow
                busy.close()
                probe.close()
                return status, body, elapsed

        status, body, elapsed = run(main())
        assert status == 200
        assert body["status"] == "ok"
        assert body["saturated"] is True
        # Health must not queue behind the saturated engine.
        assert elapsed < 0.2

    def test_stats_endpoint_reports_per_endpoint_counters(self):
        async def main():
            async with await make_front() as front:
                client = await HttpClient.connect(front)
                await client.request(
                    "POST",
                    "/v1/edit_distance",
                    {"text": "ACGT", "pattern": "ACGT", "k": 1},
                )
                await client.request("POST", "/v1/edit_distance", raw=b"nope")
                status, body, _ = await client.request("GET", "/v1/stats")
                client.close()
                return status, body

        status, body = run(main())
        assert status == 200
        endpoint = body["endpoints"]["/v1/edit_distance"]
        assert endpoint["requests"] == 2
        assert endpoint["ok"] == 1
        assert endpoint["errors"] == {"400": 1}
        assert body["serving"]["served"] == 1
        assert body["flush"]["batch_size"] == 8


class TestShutdown:
    def test_stop_drains_in_flight_request(self):
        async def main():
            engine = SlowScanEngine(delay=0.2)
            server = AlignmentServer(
                engine=engine, batch_size=1, flush_interval=0.001
            )
            front = AlignmentHTTPServer(server)
            client = await HttpClient.connect(front)
            in_flight = asyncio.create_task(
                client.request(
                    "POST",
                    "/v1/scan",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                )
            )
            await asyncio.sleep(0.05)  # request reaches the engine
            await front.stop()
            status, body, headers = await in_flight
            client.close()
            return status, body, headers

        status, body, headers = run(main())
        # Graceful shutdown: the response was computed and delivered.
        assert status == 200
        assert body["matches"]
        assert headers["connection"] == "close"

    def test_new_requests_after_stop_are_refused(self):
        async def main():
            front = await make_front()
            client = await HttpClient.connect(front)
            status, _, _ = await client.request("GET", "/healthz")
            assert status == 200
            await front.stop()
            # The keep-alive connection was closed during shutdown.
            leftover = await client.reader.read()
            client.close()
            return leftover

        assert run(main()) == b""

    def test_stop_is_idempotent(self):
        async def main():
            front = await make_front()
            await front.stop()
            await front.stop()

        run(main())


class TestMetricsEndpoint:
    """``GET /metrics`` must serve *valid* Prometheus text exposition —
    asserted by parsing with the strict parser, never by grepping — and
    the family set must widen with the mounted backend (server-only vs
    cluster + cache + autoscaler)."""

    @staticmethod
    async def scrape(client):
        # /metrics is not JSON, so read the body raw instead of going
        # through HttpClient.read_response.
        client.writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        await client.writer.drain()
        status_line = await client.reader.readline()
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await client.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await client.reader.readexactly(
            int(headers.get("content-length", "0"))
        )
        return status, headers, body.decode()

    def test_server_front_serves_parseable_exposition(self):
        async def main():
            front = await make_front(cache=True)
            async with front:
                client = await HttpClient.connect(front)
                for _ in range(3):
                    await client.request(
                        "POST",
                        "/v1/scan",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                    )
                status, headers, text = await self.scrape(client)
                client.close()
                return status, headers, text

        status, headers, text = run(main())
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        families = parse_prometheus_text(text)  # raises on invalid output
        for name in (
            "genasm_http_requests_total",
            "genasm_http_request_duration_seconds",
            "genasm_serving_requests_total",
            "genasm_serving_flushes_total",
            "genasm_serving_request_latency_seconds",
            "genasm_serving_pending_requests",
            "genasm_cache_events_total",
            "genasm_cache_entries",
        ):
            assert name in families, f"{name} missing from /metrics"
        scan_series = [
            labels
            for _, labels, _ in families["genasm_http_requests_total"]["samples"]
            if labels.get("endpoint") == "/v1/scan"
        ]
        assert scan_series, "per-endpoint labels missing"

    def test_cluster_front_adds_cluster_and_autoscaler_families(self):
        async def main():
            cluster = AlignmentCluster(
                replicas=2,
                engine="pure",
                batch_size=4,
                flush_interval=0.002,
            )
            scaler = ClusterAutoscaler(cluster, cooldown=0.0)
            async with AlignmentHTTPServer(cluster) as front:
                client = await HttpClient.connect(front)
                await client.request(
                    "POST",
                    "/v1/scan",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                )
                scaler.evaluate()
                status, _, text = await self.scrape(client)
                client.close()
                return status, text

        status, text = run(main())
        assert status == 200
        families = parse_prometheus_text(text)
        for name in (
            "genasm_cluster_replicas",
            "genasm_cluster_events_total",
            "genasm_cluster_replica_requests_total",
            "genasm_cluster_replica_latency_seconds",
            "genasm_autoscaler_actions_total",
            "genasm_autoscaler_decisions_total",
            "genasm_autoscaler_utilization",
        ):
            assert name in families, f"{name} missing from /metrics"
        # Per-replica labels: both replicas report dispatch series.
        replicas = {
            labels["replica"]
            for _, labels, _ in families[
                "genasm_cluster_replica_requests_total"
            ]["samples"]
        }
        assert len(replicas) == 2

    def test_histograms_expose_log_spaced_cumulative_buckets(self):
        async def main():
            front = await make_front()
            async with front:
                client = await HttpClient.connect(front)
                for _ in range(5):
                    await client.request(
                        "POST",
                        "/v1/scan",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 1},
                    )
                _, _, text = await self.scrape(client)
                client.close()
                return text

        families = parse_prometheus_text(run(main()))
        samples = families["genasm_http_request_duration_seconds"]["samples"]
        buckets = [
            (labels, value)
            for name, labels, value in samples
            if name.endswith("_bucket") and labels.get("endpoint") == "/v1/scan"
        ]
        # The parser already enforced cumulativity and +Inf == _count;
        # here: at least one finite boundary survived the empty-bucket
        # elision, so the series is a usable histogram, not a bare count.
        finite = [labels["le"] for labels, _ in buckets if labels["le"] != "+Inf"]
        assert finite

    def test_shared_registry_merges_front_and_custom_collectors(self):
        async def main():
            registry = MetricsRegistry()
            registry.add_collector(
                lambda: [
                    MetricFamily("genasm_custom_total", "counter").add(42)
                ]
            )
            server = AlignmentServer(
                engine="pure", batch_size=4, flush_interval=0.002
            )
            async with AlignmentHTTPServer(server, metrics=registry) as front:
                client = await HttpClient.connect(front)
                await client.request("GET", "/healthz")
                _, _, text = await self.scrape(client)
                client.close()
                return text

        families = parse_prometheus_text(run(main()))
        assert families["genasm_custom_total"]["samples"] == [
            ("genasm_custom_total", {}, 42.0)
        ]
        assert "genasm_http_requests_total" in families
