"""Unit tests for the observability primitives.

The tracing, metrics, and logging pieces are cross-cutting — every
serving module leans on them — so their local contracts are pinned here
in isolation: span idempotence, interval-union accounting, ring-buffer
eviction, registry merging, *round-trip* validity of the Prometheus
exposition (rendered text must satisfy our own strict parser), JSON log
formatting, and rate-limiter suppression counting. Integration through
the wire lives in ``test_trace_propagation.py``.
"""

import asyncio
import io
import json
import logging

import pytest

from repro.serving.histogram import LatencyHistogram
from repro.serving.observability import (
    EventRateLimiter,
    JsonFormatter,
    MetricFamily,
    MetricsRegistry,
    Span,
    Trace,
    TraceBuffer,
    configure_logging,
    current_trace,
    get_logger,
    log_event,
    new_trace_id,
    parse_prometheus_text,
    use_trace,
)


class TestSpan:
    def test_finish_is_idempotent_first_outcome_wins(self):
        span = Span(name="engine", start=0.0)
        span.finish("cancelled", replica="r0")
        end = span.end
        span.finish("ok", replica="r9")  # a late completion must not win
        assert span.outcome == "cancelled"
        assert span.end == end
        assert span.attrs == {"replica": "r0"}

    def test_open_span_has_no_duration_and_reports_open(self):
        span = Span(name="queue_wait", start=5.0)
        assert span.duration is None
        assert span.to_dict(origin=5.0)["outcome"] == "open"

    def test_to_dict_offsets_are_millisecond_relative(self):
        span = Span(name="engine", start=10.0, end=10.25)
        wire = span.to_dict(origin=9.9)
        assert wire["start_ms"] == pytest.approx(100.0)
        assert wire["end_ms"] == pytest.approx(350.0)
        assert wire["duration_ms"] == pytest.approx(250.0)


class TestTrace:
    def test_ids_are_generated_or_honored(self):
        assert Trace("client-id").trace_id == "client-id"
        generated = Trace()
        assert len(generated.trace_id) == 32
        assert new_trace_id() != new_trace_id()

    def test_span_contextmanager_marks_errors(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("engine"):
                raise RuntimeError("boom")
        assert trace.spans[0].outcome == "error"
        with trace.span("parse"):
            pass
        assert trace.spans[1].outcome == "ok"

    def test_accounted_fraction_unions_overlapping_spans(self):
        # Overlap (attempt covering queue_wait) must count once, and the
        # uninstrumented tail must show up as missing coverage.
        trace = Trace()
        origin = trace.started
        trace.spans.append(Span("attempt", origin, origin + 0.6))
        trace.spans.append(Span("queue_wait", origin + 0.1, origin + 0.5))
        trace.spans.append(Span("serialize", origin + 0.8, origin + 0.9))
        trace.ended = origin + 1.0
        assert trace.accounted_fraction() == pytest.approx(0.7)

    def test_accounted_fraction_clamps_to_window(self):
        trace = Trace()
        origin = trace.started
        trace.spans.append(Span("engine", origin - 1.0, origin + 2.0))
        trace.ended = origin + 1.0
        assert trace.accounted_fraction() == 1.0

    def test_finish_first_call_wins(self):
        trace = Trace()
        trace.finish()
        ended = trace.ended
        trace.finish()
        assert trace.ended == ended

    def test_to_dict_carries_meta_and_completion(self):
        trace = Trace("abc", path="/v1/scan", method="POST")
        trace.begin("parse").finish()
        wire = trace.to_dict()
        assert wire["complete"] is False and wire["duration_ms"] is None
        trace.finish()
        wire = trace.to_dict()
        assert wire["complete"] is True
        assert wire["meta"] == {"path": "/v1/scan", "method": "POST"}
        assert [span["name"] for span in wire["spans"]] == ["parse"]


class TestTracePropagationPrimitive:
    def test_use_trace_scopes_the_context(self):
        assert current_trace() is None
        trace = Trace()
        with use_trace(trace):
            assert current_trace() is trace
            with use_trace(None):
                assert current_trace() is None
            assert current_trace() is trace
        assert current_trace() is None

    def test_spawned_tasks_inherit_the_trace(self):
        # The propagation mechanism the whole design rests on: asyncio
        # copies the context at task creation, so hedges/retries inherit.
        async def main():
            trace = Trace()
            with use_trace(trace):
                seen = await asyncio.ensure_future(_read_current())
            return trace, seen

        async def _read_current():
            return current_trace()

        trace, seen = asyncio.run(main())
        assert seen is trace


class TestTraceBuffer:
    def test_evicts_oldest_past_capacity(self):
        ring = TraceBuffer(capacity=2)
        traces = [Trace(f"t{i}") for i in range(3)]
        for trace in traces:
            ring.add(trace)
        assert len(ring) == 2
        assert ring.get("t0") is None
        assert ring.get("t2") is traces[2]
        assert ring.trace_ids() == ["t1", "t2"]

    def test_refresh_moves_a_trace_to_newest(self):
        ring = TraceBuffer(capacity=2)
        first, second, third = Trace("a"), Trace("b"), Trace("c")
        ring.add(first)
        ring.add(second)
        ring.add(first)  # refreshed: now newest
        ring.add(third)  # evicts "b", not "a"
        assert ring.get("a") is first
        assert ring.get("b") is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestMetricFamily:
    def test_rejects_bad_names_and_kinds(self):
        with pytest.raises(ValueError):
            MetricFamily("0bad", "counter")
        with pytest.raises(ValueError):
            MetricFamily("fine_name", "summary")

    def test_histogram_samples_only_on_histogram_kind(self):
        with pytest.raises(ValueError):
            MetricFamily("x_total", "counter").add_histogram(
                LatencyHistogram()
            )


class TestMetricsRegistry:
    def test_merges_same_named_families_across_collectors(self):
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [
                MetricFamily("genasm_x_total", "counter").add(1, shard="a")
            ]
        )
        registry.add_collector(
            lambda: [
                MetricFamily("genasm_x_total", "counter").add(2, shard="b")
            ]
        )
        merged = registry.collect()
        assert [value for _, value in merged["genasm_x_total"].samples] == [
            1.0,
            2.0,
        ]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [MetricFamily("genasm_x", "counter").add(1)]
        )
        registry.add_collector(
            lambda: [MetricFamily("genasm_x", "gauge").add(1)]
        )
        with pytest.raises(ValueError, match="registered as both"):
            registry.collect()

    def test_render_round_trips_through_the_parser(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.01, 0.5, 0.5):
            histogram.record(value)
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [
                MetricFamily(
                    "genasm_reqs_total", "counter", "Requests."
                ).add(7, endpoint="/v1/scan"),
                MetricFamily("genasm_load", "gauge").add(0.25),
                MetricFamily(
                    "genasm_latency_seconds", "histogram", "Latency."
                ).add_histogram(histogram, endpoint="/v1/scan"),
            ]
        )
        families = parse_prometheus_text(registry.render())
        assert families["genasm_reqs_total"]["type"] == "counter"
        assert families["genasm_reqs_total"]["help"] == "Requests."
        assert families["genasm_reqs_total"]["samples"] == [
            ("genasm_reqs_total", {"endpoint": "/v1/scan"}, 7.0)
        ]
        latency = families["genasm_latency_seconds"]["samples"]
        by_name = {}
        for sample_name, labels, value in latency:
            by_name.setdefault(sample_name, []).append((labels, value))
        (sum_labels, sum_value), = by_name["genasm_latency_seconds_sum"]
        assert sum_value == pytest.approx(histogram.total)
        (_, count_value), = by_name["genasm_latency_seconds_count"]
        assert count_value == 5.0
        inf_buckets = [
            value
            for labels, value in by_name["genasm_latency_seconds_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert inf_buckets == [5.0]

    def test_label_values_escape_and_round_trip(self):
        registry = MetricsRegistry()
        tricky = 'quote " slash \\ newline \n end'
        registry.add_collector(
            lambda: [MetricFamily("genasm_x_total", "counter").add(1, name=tricky)]
        )
        families = parse_prometheus_text(registry.render())
        ((_, labels, _),) = families["genasm_x_total"]["samples"]
        assert labels["name"] == tricky

    def test_histogram_objects_hands_back_live_references(self):
        histogram = LatencyHistogram()
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [
                MetricFamily("genasm_lat_seconds", "histogram").add_histogram(
                    histogram, endpoint="/v1/align"
                )
            ]
        )
        objects = registry.histogram_objects("genasm_lat_seconds")
        assert objects[(("endpoint", "/v1/align"),)] is histogram
        assert registry.histogram_objects("genasm_missing") == {}


class TestCumulativeBuckets:
    def test_matches_count_and_is_monotone(self):
        histogram = LatencyHistogram()
        for value in (1e-5, 0.003, 0.003, 1.5, 250.0):
            histogram.record(value)
        buckets = histogram.cumulative_buckets()
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == histogram.count
        bounds = [bound for bound, _ in buckets]
        assert bounds == sorted(bounds)

    def test_empty_histogram_has_no_buckets(self):
        assert LatencyHistogram().cumulative_buckets() == []


class TestExpositionParser:
    def test_sample_without_type_declaration_is_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus_text("genasm_x_total 3\n")

    def test_malformed_sample_line_is_rejected(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text(
                "# TYPE genasm_x counter\ngenasm_x{oops 3\n"
            )

    def test_garbage_value_is_rejected(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text(
                "# TYPE genasm_x counter\ngenasm_x notanumber\n"
            )

    def test_duplicate_type_is_rejected(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus_text(
                "# TYPE genasm_x counter\n# TYPE genasm_x gauge\n"
            )

    def test_noncumulative_histogram_buckets_are_rejected(self):
        text = (
            "# TYPE genasm_h histogram\n"
            'genasm_h_bucket{le="0.1"} 5\n'
            'genasm_h_bucket{le="1"} 3\n'
            'genasm_h_bucket{le="+Inf"} 5\n'
            "genasm_h_count 5\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(text)

    def test_inf_bucket_must_agree_with_count(self):
        text = (
            "# TYPE genasm_h histogram\n"
            'genasm_h_bucket{le="+Inf"} 5\n'
            "genasm_h_count 7\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            parse_prometheus_text(text)

    def test_histogram_missing_inf_bucket_is_rejected(self):
        text = (
            "# TYPE genasm_h histogram\n"
            'genasm_h_bucket{le="0.1"} 5\n'
            "genasm_h_count 5\n"
        )
        with pytest.raises(ValueError, match="missing \\+Inf"):
            parse_prometheus_text(text)


class TestJsonLogging:
    def _capture(self, level=logging.INFO):
        stream = io.StringIO()
        handler = configure_logging(level=level, stream=stream)
        return stream, handler

    def test_log_event_emits_one_json_object_per_line(self):
        stream, _ = self._capture()
        logger = get_logger("cluster")
        emitted = log_event(
            logger,
            "cluster.shed",
            level=logging.WARNING,
            trace_id="abc123",
            live_replicas=2,
        )
        assert emitted
        record = json.loads(stream.getvalue().strip())
        assert record["event"] == "cluster.shed"
        assert record["level"] == "warning"
        assert record["logger"] == "repro.serving.cluster"
        assert record["trace_id"] == "abc123"
        assert record["live_replicas"] == 2

    def test_configure_logging_is_idempotent(self):
        stream, _ = self._capture()
        configure_logging(stream=stream)  # must replace, not duplicate
        log_event(get_logger("http"), "http.slow_request")
        assert len(stream.getvalue().strip().splitlines()) == 1

    def test_disabled_level_short_circuits(self):
        stream, _ = self._capture(level=logging.ERROR)
        assert not log_event(get_logger("http"), "http.slow_request")
        assert stream.getvalue() == ""

    def test_unserializable_fields_degrade_to_str(self):
        stream, _ = self._capture()
        log_event(get_logger("http"), "weird", payload=object())
        record = json.loads(stream.getvalue().strip())
        assert "object object" in record["payload"]

    def teardown_method(self):
        # Drop the captured-stream handler so later tests (and suites)
        # never write into a closed StringIO.
        root = logging.getLogger("repro.serving")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_json_handler", False):
                root.removeHandler(handler)


class TestEventRateLimiter:
    def test_suppresses_within_interval_and_counts(self):
        limiter = EventRateLimiter(min_interval=1.0)
        assert limiter.ready("shed", now=0.0) == (True, 0)
        assert limiter.ready("shed", now=0.2) == (False, 0)
        assert limiter.ready("shed", now=0.8) == (False, 0)
        # The next emitted event reports how many lines it swallowed.
        assert limiter.ready("shed", now=1.5) == (True, 2)
        assert limiter.ready("shed", now=3.0) == (True, 0)

    def test_keys_are_independent(self):
        limiter = EventRateLimiter(min_interval=1.0)
        assert limiter.ready("shed", now=0.0) == (True, 0)
        assert limiter.ready("hedge", now=0.1) == (True, 0)

    def test_suppressed_count_reaches_the_log_line(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        try:
            limiter = EventRateLimiter(min_interval=10.0)
            logger = get_logger("cluster")
            assert log_event(logger, "shed", limiter=limiter)
            assert not log_event(logger, "shed", limiter=limiter)
            assert not log_event(logger, "shed", limiter=limiter)
            limiter._last["shed"] = -100.0  # force the window open
            assert log_event(logger, "shed", limiter=limiter)
            lines = [
                json.loads(line)
                for line in stream.getvalue().strip().splitlines()
            ]
            assert lines[-1]["suppressed"] == 2
        finally:
            root = logging.getLogger("repro.serving")
            for handler in list(root.handlers):
                if getattr(handler, "_repro_json_handler", False):
                    root.removeHandler(handler)
