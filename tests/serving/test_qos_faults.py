"""Fault-injection suite for multi-tenant QoS isolation.

PR 5 proved fault tolerance by injecting replica failures; this suite
proves *isolation* by injecting abusive tenants, expired deadlines, and
vanished clients, and asserts the QoS layer's contract:

* a tenant saturating the service at 10x its fair share moves an honest
  tenant's p99 by at most 2x its solo baseline and leaves it >= 0.8 of
  its solo goodput (the headline acceptance bound, proven on a
  deterministic virtual clock — and shown to *fail* under the old FIFO
  discipline, so the test has teeth);
* over-quota and unknown-key clients get 429 with an accurate
  bucket-derived ``Retry-After``, never a 503;
* a hedge or retry behind the front can never double-charge a bucket;
* expired deadlines drop queued work before the engine call;
* a client that disconnects mid-queue has its work cancelled, not
  computed for nobody.
"""

import asyncio
import json
import logging
import math
import threading
import time
from collections import deque

import pytest

from repro.engine import PurePythonEngine
from repro.serving import (
    AlignmentCluster,
    AlignmentHTTPServer,
    AlignmentServer,
    DeadlineExceededError,
    FairQueue,
    FifoQueue,
    QosPolicy,
    TenantConfig,
    TokenBucket,
    parse_prometheus_text,
)
from repro.serving.http import open_memory_connection


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class RecordingEngine(PurePythonEngine):
    """Engine double that records every payload it actually computed."""

    def __init__(self, *, delay=0.0):
        self.delay = delay
        self.hang: threading.Event | None = None
        self.calls = []
        self._lock = threading.Lock()

    def _behave(self, kind, payloads):
        with self._lock:
            self.calls.append((kind, list(payloads)))
        if self.hang is not None:
            assert self.hang.wait(timeout=10.0), "test forgot to release hang"
        if self.delay:
            time.sleep(self.delay)

    def scan_batch(self, pairs, k, **kwargs):
        self._behave("scan", pairs)
        return super().scan_batch(pairs, k, **kwargs)

    def served_pairs(self):
        with self._lock:
            return [pair for _, payloads in self.calls for pair in payloads]


class HttpClient:
    """Minimal HTTP/1.1 client over one in-memory stream pair."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, front):
        return cls(*await open_memory_connection(front))

    async def request(self, method, path, body=None, headers=None):
        payload = b"" if body is None else json.dumps(body).encode()
        lines = [f"{method} {path} HTTP/1.1", "Host: test"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if payload:
            lines.append(f"Content-Length: {len(payload)}")
        self.writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + payload)
        await self.writer.drain()
        return await self.read_response()

    async def read_response(self):
        status_line = await self.reader.readline()
        assert status_line, "connection closed before a response arrived"
        status = int(status_line.split()[1])
        headers = {}
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self.reader.readexactly(length) if length else b""
        return status, (json.loads(body) if body else None), headers

    def close(self):
        self.writer.close()


# ----------------------------------------------------------------------
# The headline isolation bound, on a deterministic virtual clock
# ----------------------------------------------------------------------
#: Virtual service model: every tick, one batch of BATCH requests is
#: taken from the queue and completes TICK seconds later. Capacity is
#: therefore BATCH / TICK requests/second, shared by two tenants.
BATCH = 8
TICK = 0.01
HORIZON = 150  # ticks simulated
DEADLINE_TICKS = 5  # honest requests' latency budget


def simulate(queue, *, abusive: bool):
    """Drive honest (1 req/tick) and optional abusive (40 req/tick)
    traffic through ``queue`` on a virtual clock; return the honest
    tenant's per-request latencies (seconds), its goodput (fraction
    answered within deadline), and the abuser's throttled count.

    The abuser offers 10x the fair share (capacity 800 req/s, fair share
    400, offered 4000). Its bucket admits close to *capacity* — admission
    alone is deliberately not the isolation mechanism; the queue
    discipline under test is.
    """
    clock = FakeClock()
    abuser_bucket = TokenBucket(rate=700.0, burst=350.0, clock=clock)
    latencies = []
    met_deadline = 0
    honest_sent = 0
    throttled = 0
    for tick in range(HORIZON):
        queue.push(("honest", tick), tenant="honest", interactive=True)
        honest_sent += 1
        if abusive:
            for i in range(40):  # 10x fair share, every tick
                if abuser_bucket.try_acquire():
                    queue.push(("abuser", tick), tenant="abuser")
                else:
                    throttled += 1
        for tenant, arrival in queue.take(BATCH):
            if tenant != "honest":
                continue
            waited_ticks = tick - arrival + 1
            latencies.append(waited_ticks * TICK)
            if waited_ticks <= DEADLINE_TICKS:
                met_deadline += 1
        clock.advance(TICK)
    goodput = met_deadline / honest_sent
    return latencies, goodput, throttled


def p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)]


class TestIsolationUnderAbuse:
    def test_fair_queue_holds_the_acceptance_bound(self):
        """10x-saturating abuser: honest p99 <= 2x solo, goodput >= 0.8."""
        solo, solo_goodput, _ = simulate(FairQueue(), abusive=False)
        fair, fair_goodput, throttled = simulate(FairQueue(), abusive=True)
        assert solo_goodput == 1.0
        assert p99(fair) <= 2.0 * p99(solo)
        assert fair_goodput >= 0.8
        assert throttled > 0  # admission control really was exercised

    def test_fifo_violates_the_bound_so_the_test_has_teeth(self):
        """The same abuse through the old FIFO discipline blows both
        bounds — proving the assertion above is load-bearing, not slack."""
        solo, _, _ = simulate(FifoQueue(), abusive=False)
        fifo, fifo_goodput, _ = simulate(FifoQueue(), abusive=True)
        assert p99(fifo) > 2.0 * p99(solo)
        assert fifo_goodput < 0.8

    def test_weighted_share_is_respected_under_abuse(self):
        """A 3:1-weighted honest tenant drains 3x the abuser's rate out
        of a contended queue regardless of backlog sizes."""
        queue = FairQueue(weight_of={"honest": 3.0, "abuser": 1.0}.get)
        for i in range(120):
            queue.push(("abuser", i), tenant="abuser")
        for i in range(40):
            queue.push(("honest", i), tenant="honest")
        batch = queue.take(40)
        honest = sum(1 for tenant, _ in batch if tenant == "honest")
        assert honest == 30  # exactly 3/4 of the batch


# ----------------------------------------------------------------------
# 429 semantics: bucket-derived Retry-After, never a 503
# ----------------------------------------------------------------------
class TestAdmission429:
    def test_over_quota_gets_429_with_exact_retry_after_never_503(self):
        clock = FakeClock()
        qos = QosPolicy(
            default=TenantConfig("anonymous", rate=0.25, burst=3),
            clock=clock,
        )

        async def main():
            server = AlignmentServer(
                engine="pure",
                batch_size=4,
                flush_interval=0.001,
                max_pending=64,
                qos=qos,
            )
            async with AlignmentHTTPServer(server, qos=qos) as front:
                client = await HttpClient.connect(front)
                statuses = []
                retry_headers = []
                bodies = []
                for i in range(20):
                    # Unknown, rotating keys: all share the default bucket.
                    status, body, headers = await client.request(
                        "POST",
                        "/v1/scan",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 0},
                        headers={"X-API-Key": f"rotated-{i}"},
                    )
                    statuses.append(status)
                    retry_headers.append(headers.get("retry-after"))
                    bodies.append(body)
                client.close()
                return statuses, retry_headers, bodies

        statuses, retry_headers, bodies = run(main())
        assert statuses.count(200) == 3  # exactly the burst
        assert statuses.count(429) == 17
        assert 503 not in statuses
        for status, header, body in zip(statuses, retry_headers, bodies):
            if status != 429:
                continue
            # The bucket is empty and frozen (injected clock): 1 missing
            # token at 0.25/s -> 4.0 s, integer-ceiled on the wire and
            # precise in the body.
            assert header == "4"
            assert body["retry_after"] == pytest.approx(4.0)

    def test_waiting_out_retry_after_is_sufficient(self):
        clock = FakeClock()
        qos = QosPolicy(
            [TenantConfig("acme", rate=0.5, burst=1)], clock=clock
        )

        async def main():
            server = AlignmentServer(engine="pure", flush_interval=0.001, qos=qos)
            async with AlignmentHTTPServer(server, qos=qos) as front:
                client = await HttpClient.connect(front)
                payload = {"text": "ACGT", "pattern": "AC", "k": 0}
                key = {"X-API-Key": "acme"}
                first, _, _ = await client.request(
                    "POST", "/v1/scan", payload, headers=key
                )
                throttled, body, _ = await client.request(
                    "POST", "/v1/scan", payload, headers=key
                )
                clock.advance(body["retry_after"] + 1e-9)
                after_wait, _, _ = await client.request(
                    "POST", "/v1/scan", payload, headers=key
                )
                client.close()
                return first, throttled, after_wait

        first, throttled, after_wait = run(main())
        assert (first, throttled, after_wait) == (200, 429, 200)

    def test_throttle_events_are_rate_limited(self, caplog):
        qos = QosPolicy(
            [TenantConfig("noisy", rate=1.0, burst=1)], clock=FakeClock()
        )
        noisy = qos.resolve("noisy")
        qos.admit(noisy)
        with caplog.at_level(logging.WARNING, logger="repro.serving.qos"):
            for _ in range(50):
                with pytest.raises(Exception):
                    qos.admit(noisy)
        throttle_lines = [
            r for r in caplog.records
            if "qos.tenant_throttled" in r.getMessage()
        ]
        assert len(throttle_lines) == 1  # 49 suppressed by the limiter


# ----------------------------------------------------------------------
# Hedges and retries cannot double-charge a bucket
# ----------------------------------------------------------------------
class TestHedgeSingleCharge:
    def test_hedged_requests_charge_admission_once(self):
        """Burst == request count: if a hedge double-charged, the later
        requests would 429. All succeed, and hedges really fired."""
        requests = 6
        qos = QosPolicy(
            [TenantConfig("acme", rate=0.001, burst=requests)],
            clock=FakeClock(),
        )
        slow = RecordingEngine(delay=0.15)
        fast = RecordingEngine()
        engines = [slow, fast]

        async def main():
            cluster = AlignmentCluster(
                replicas=2,
                engine_factory=lambda i: engines[i],
                policy="round_robin",
                batch_size=1,
                flush_interval=0.001,
                hedge=True,
                max_hedge_delay=0.01,
                qos=qos,
            )
            async with AlignmentHTTPServer(cluster, qos=qos) as front:
                client = await HttpClient.connect(front)
                statuses = []
                for i in range(requests):
                    status, _, _ = await client.request(
                        "POST",
                        "/v1/scan",
                        {"text": "ACGTACGT", "pattern": "ACGT", "k": 0},
                        headers={"X-API-Key": "acme"},
                    )
                    statuses.append(status)
                client.close()
                return statuses, cluster.hedges

        statuses, hedges = run(main())
        assert statuses == [200] * requests
        assert hedges > 0  # duplicates really were dispatched behind admission


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_queued_work_is_dropped_before_the_engine(self):
        """A request whose deadline passes while queued costs a queue
        slot, never an engine call, and surfaces as stats.expired."""
        engine = RecordingEngine()

        async def main():
            async with AlignmentServer(
                engine=engine, batch_size=8, flush_interval=10.0
            ) as server:
                doomed = asyncio.ensure_future(
                    server.scan(
                        "ACGTACGT",
                        "TTTT",
                        0,
                        tenant="acme",
                        deadline=time.monotonic() + 0.01,
                    )
                )
                await asyncio.sleep(0.05)  # deadline passes while queued
                # Fill the batch so the size trigger flushes everything.
                others = [
                    server.scan("ACGTACGT", "ACGT", 0) for _ in range(7)
                ]
                results = await asyncio.gather(*others)
                with pytest.raises(DeadlineExceededError):
                    await doomed
                return results, server.stats.expired

        results, expired = run(main())
        assert expired == 1
        assert len(results) == 7
        assert ("ACGTACGT", "TTTT") not in engine.served_pairs()

    def test_already_expired_request_never_queues(self):
        engine = RecordingEngine()

        async def main():
            async with AlignmentServer(
                engine=engine, flush_interval=0.001
            ) as server:
                with pytest.raises(DeadlineExceededError):
                    await server.scan(
                        "ACGT", "AC", 0, deadline=time.monotonic() - 1.0
                    )
                return server.stats.expired

        assert run(main()) == 1
        assert engine.calls == []

    def test_http_deadline_maps_to_504_and_counts_per_tenant(self):
        qos = QosPolicy(clock=FakeClock())

        async def main():
            server = AlignmentServer(
                engine="pure", flush_interval=0.001, qos=qos
            )
            async with AlignmentHTTPServer(server, qos=qos) as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/edit_distance",
                    # A nanosecond-scale budget expires inside dispatch.
                    {"text": "ACGT", "pattern": "AC", "k": 1,
                     "timeout_ms": 1e-6},
                )
                stats_status, stats, _ = await client.request(
                    "GET", "/v1/stats"
                )
                client.close()
                return status, body, stats

        status, body, stats = run(main())
        assert status == 504
        assert "deadline" in body["error"]
        assert stats["tenants"]["anonymous"]["expired"] == 1

    def test_header_deadline_and_invalid_budgets(self):
        async def main():
            server = AlignmentServer(engine="pure", flush_interval=0.001)
            async with AlignmentHTTPServer(server) as front:
                client = await HttpClient.connect(front)
                payload = {"text": "ACGT", "pattern": "AC", "k": 0}
                ok, _, _ = await client.request(
                    "POST", "/v1/scan", payload,
                    headers={"X-Request-Deadline": "5000"},
                )
                expired, _, _ = await client.request(
                    "POST", "/v1/scan", payload,
                    headers={"X-Request-Deadline": "0.000001"},
                )
                bad_header, _, _ = await client.request(
                    "POST", "/v1/scan", payload,
                    headers={"X-Request-Deadline": "soon"},
                )
                bad_body, _, _ = await client.request(
                    "POST", "/v1/scan", dict(payload, timeout_ms=-3),
                )
                client.close()
                return ok, expired, bad_header, bad_body

        assert run(main()) == (200, 504, 400, 400)


# ----------------------------------------------------------------------
# Client disconnects
# ----------------------------------------------------------------------
class TestClientDisconnect:
    def test_disconnect_while_queued_cancels_the_work(self):
        """A client that hangs up mid-queue has its future cancelled —
        stats.cancelled counts it and the engine never computes it."""
        engine = RecordingEngine()

        async def main():
            server = AlignmentServer(
                engine=engine, batch_size=8, flush_interval=0.2
            )
            front = AlignmentHTTPServer(
                server, disconnect_poll=0.005
            )
            reader, writer = await open_memory_connection(front)
            body = json.dumps(
                {"text": "ACGTACGT", "pattern": "TTTT", "k": 0}
            ).encode()
            writer.write(
                (
                    "POST /v1/scan HTTP/1.1\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
            await asyncio.sleep(0.02)  # request is parsed and queued
            writer.close()  # client vanishes before the flush fires
            await asyncio.sleep(0.05)
            disconnects = front.client_disconnects
            await front.stop()
            return disconnects, server.stats.cancelled

        disconnects, cancelled = run(main())
        assert disconnects == 1
        assert cancelled == 1
        assert ("ACGTACGT", "TTTT") not in engine.served_pairs()

    def test_connected_clients_are_unaffected_by_polling(self):
        async def main():
            server = AlignmentServer(engine="pure", flush_interval=0.001)
            async with AlignmentHTTPServer(
                server, disconnect_poll=0.005
            ) as front:
                client = await HttpClient.connect(front)
                status, body, _ = await client.request(
                    "POST",
                    "/v1/scan",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 0},
                )
                client.close()
                return status, body, front.client_disconnects

        status, body, disconnects = run(main())
        assert status == 200 and body["matches"]
        assert disconnects == 0


# ----------------------------------------------------------------------
# Per-tenant observability
# ----------------------------------------------------------------------
class TestTenantObservability:
    def test_stats_and_metrics_grow_tenant_blocks(self):
        clock = FakeClock()
        qos = QosPolicy(
            [TenantConfig("acme", rate=5.0, burst=5, weight=2.0)],
            clock=clock,
        )

        async def main():
            server = AlignmentServer(
                engine="pure", flush_interval=0.001, qos=qos
            )
            async with AlignmentHTTPServer(server, qos=qos) as front:
                client = await HttpClient.connect(front)
                payload = {"text": "ACGTACGT", "pattern": "ACGT", "k": 0}
                for _ in range(3):
                    await client.request(
                        "POST", "/v1/scan", payload,
                        headers={"X-API-Key": "acme"},
                    )
                await client.request("POST", "/v1/scan", payload)
                for _ in range(3):  # drain acme's bucket -> 429s
                    await client.request(
                        "POST", "/v1/scan", payload,
                        headers={"X-API-Key": "acme"},
                    )
                _, stats, _ = await client.request("GET", "/v1/stats")
                health_status, _, _ = await client.request("GET", "/healthz")
                client.close()
                return stats, health_status

        stats, health_status = run(main())
        acme = stats["tenants"]["acme"]
        assert acme["requests"] == 6
        assert acme["ok"] == 5
        assert acme["throttled"] == 1
        assert acme["weight"] == 2.0
        assert acme["latency"]["count"] == 5
        anonymous = stats["tenants"]["anonymous"]
        assert anonymous["ok"] == 1
        assert stats["qos"] == {
            "fair_queueing": True,
            "queued_by_tenant": {},
        }
        assert health_status == 200

    def test_metrics_exposition_carries_tenant_labels(self):
        clock = FakeClock()
        qos = QosPolicy(
            [TenantConfig("acme", rate=5.0, burst=5)], clock=clock
        )

        async def main():
            server = AlignmentServer(
                engine="pure", flush_interval=0.001, qos=qos
            )
            async with AlignmentHTTPServer(server, qos=qos) as front:
                client = await HttpClient.connect(front)
                await client.request(
                    "POST",
                    "/v1/scan",
                    {"text": "ACGTACGT", "pattern": "ACGT", "k": 0},
                    headers={"X-API-Key": "acme"},
                )
                text = front.metrics.render()
                client.close()
                return text

        text = run(main())
        parsed = parse_prometheus_text(text)
        outcome_samples = parsed["genasm_qos_requests_total"]["samples"]
        assert any(
            labels.get("tenant") == "acme" and labels.get("outcome") == "ok"
            and value == 1.0
            for _name, labels, value in outcome_samples
        )
        assert "genasm_qos_tokens_available" in parsed
        assert "genasm_qos_request_latency_seconds" in parsed
        assert "genasm_http_client_disconnects_total" in parsed
