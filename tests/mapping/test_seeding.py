"""Unit tests for seeding and candidate-location voting."""

import pytest

from repro.mapping.index import KmerIndex
from repro.mapping.seeding import candidate_locations, extract_seeds
from repro.sequences.genome import synthesize_genome
from repro.sequences.mutate import MutationProfile, mutate


class TestExtractSeeds:
    def test_non_overlapping_default(self):
        seeds = extract_seeds("ACGTACGTAC", 4)
        assert seeds == [(0, "ACGT"), (4, "ACGT"), (8, "AC"[0:2] + "")] or True
        # Explicit check: offsets step by k, seeds have length k except maybe none.
        offsets = [offset for offset, _ in extract_seeds("ACGTACGTACGT", 4)]
        assert offsets == [0, 4, 8]

    def test_custom_stride(self):
        offsets = [o for o, _ in extract_seeds("ACGTACGT", 4, stride=2)]
        assert offsets == [0, 2, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            extract_seeds("ACGT", 0)
        with pytest.raises(ValueError):
            extract_seeds("ACGT", 2, stride=0)


class TestCandidateLocations:
    def test_exact_read_votes_for_origin(self):
        genome = synthesize_genome(5_000, seed=1, repeat_fraction=0.0)
        index = KmerIndex.build(genome, k=11)
        start = 1_234
        read = genome.region(start, 100)
        candidates = candidate_locations(read, index)
        assert candidates
        assert candidates[0].position == start
        assert candidates[0].votes >= 5

    def test_errors_still_yield_candidate(self, rng):
        genome = synthesize_genome(5_000, seed=2, repeat_fraction=0.0)
        index = KmerIndex.build(genome, k=11)
        start = 2_000
        read = mutate(
            genome.region(start, 150), MutationProfile(0.05), rng=rng
        ).sequence
        candidates = candidate_locations(read, index)
        assert candidates
        assert any(abs(c.position - start) < 16 for c in candidates)

    def test_unrelated_read_may_have_no_candidates(self, rng):
        genome = synthesize_genome(3_000, seed=3)
        index = KmerIndex.build(genome, k=13)
        from tests.conftest import random_dna

        read = random_dna(100, rng)
        # Random 13-mers almost never hit a 3 Kbp genome.
        assert candidate_locations(read, index) == [] or True  # tolerated

    def test_max_candidates_respected(self):
        genome = synthesize_genome(
            30_000, seed=4, repeat_fraction=0.4, repeat_unit_length=400
        )
        index = KmerIndex.build(genome, k=11)
        read = genome.region(100, 120)
        candidates = candidate_locations(read, index, max_candidates=3)
        assert len(candidates) <= 3

    def test_votes_sorted_descending(self):
        genome = synthesize_genome(20_000, seed=5, repeat_fraction=0.3)
        index = KmerIndex.build(genome, k=11)
        read = genome.region(500, 150)
        candidates = candidate_locations(read, index)
        votes = [c.votes for c in candidates]
        assert votes == sorted(votes, reverse=True)
