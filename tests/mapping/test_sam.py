"""Unit tests for SAM output."""

import io

from repro.core.cigar import Cigar
from repro.mapping.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    SamRecord,
    unmapped_record,
    write_sam,
)


class TestRecords:
    def test_mapped_record_line(self):
        record = SamRecord(
            query_name="r1",
            flag=0,
            reference_name="chr1",
            position=42,
            mapping_quality=60,
            cigar=Cigar("MMSM"),
            sequence="ACGT",
        )
        fields = record.to_line().split("\t")
        assert fields[0] == "r1"
        assert fields[2] == "chr1"
        assert fields[3] == "42"
        assert fields[5] == "2=1X1="
        assert record.is_mapped

    def test_unmapped_record(self):
        record = unmapped_record("r2", "ACGT")
        assert not record.is_mapped
        assert record.flag & FLAG_UNMAPPED
        fields = record.to_line().split("\t")
        assert fields[2] == "*"
        assert fields[5] == "*"

    def test_reverse_flag(self):
        record = SamRecord("r", FLAG_REVERSE, "c", 1, 0, Cigar("M"), "A")
        assert record.flag & FLAG_REVERSE
        assert record.is_mapped


class TestWriter:
    def test_header_and_records(self):
        out = io.StringIO()
        records = [
            SamRecord("r1", 0, "chr1", 1, 60, Cigar("MM"), "AC"),
            unmapped_record("r2", "GG"),
        ]
        write_sam(records, out, reference_name="chr1", reference_length=1000)
        lines = out.getvalue().strip().split("\n")
        assert lines[0].startswith("@HD")
        assert "SN:chr1" in lines[1]
        assert "LN:1000" in lines[1]
        assert len(lines) == 5  # 3 header + 2 records

    def test_file_output(self, tmp_path):
        path = tmp_path / "out.sam"
        write_sam(
            [unmapped_record("r", "A")],
            path,
            reference_name="x",
            reference_length=10,
        )
        assert path.read_text().count("\n") == 4
