"""Unit tests for SAM output."""

import io

import pytest

from repro.core.cigar import Cigar
from repro.mapping.sam import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    SamRecord,
    sam_header,
    unmapped_record,
    write_sam,
)


class TestRecords:
    def test_mapped_record_line(self):
        record = SamRecord(
            query_name="r1",
            flag=0,
            reference_name="chr1",
            position=42,
            mapping_quality=60,
            cigar=Cigar("MMSM"),
            sequence="ACGT",
        )
        fields = record.to_line().split("\t")
        assert fields[0] == "r1"
        assert fields[2] == "chr1"
        assert fields[3] == "42"
        assert fields[5] == "2=1X1="
        assert record.is_mapped

    def test_unmapped_record(self):
        record = unmapped_record("r2", "ACGT")
        assert not record.is_mapped
        assert record.flag & FLAG_UNMAPPED
        fields = record.to_line().split("\t")
        assert fields[2] == "*"
        assert fields[5] == "*"

    def test_reverse_flag(self):
        record = SamRecord("r", FLAG_REVERSE, "c", 1, 0, Cigar("M"), "A")
        assert record.flag & FLAG_REVERSE
        assert record.is_mapped

    def test_empty_sequence_renders_star(self):
        # An empty SEQ column must render "*", not an empty field that
        # shifts every later column over by one.
        record = SamRecord("r", FLAG_UNMAPPED, "*", 0, 0, None, "")
        fields = record.to_line().split("\t")
        assert len(fields) == 11
        assert fields[9] == "*"


class TestWriter:
    def test_header_and_records(self):
        out = io.StringIO()
        records = [
            SamRecord("r1", 0, "chr1", 1, 60, Cigar("MM"), "AC"),
            unmapped_record("r2", "GG"),
        ]
        write_sam(records, out, reference_name="chr1", reference_length=1000)
        lines = out.getvalue().strip().split("\n")
        assert lines[0].startswith("@HD")
        assert "SN:chr1" in lines[1]
        assert "LN:1000" in lines[1]
        assert len(lines) == 5  # 3 header + 2 records

    def test_file_output(self, tmp_path):
        path = tmp_path / "out.sam"
        write_sam(
            [unmapped_record("r", "A")],
            path,
            reference_name="x",
            reference_length=10,
        )
        assert path.read_text().count("\n") == 4

    def test_multi_contig_header(self):
        out = io.StringIO()
        contigs = [("chr1", 1000), ("chr2", 500), ("chrM", 16)]
        write_sam([], out, reference_sequences=contigs)
        lines = out.getvalue().strip().split("\n")
        sq = [line for line in lines if line.startswith("@SQ")]
        assert sq == [
            "@SQ\tSN:chr1\tLN:1000",
            "@SQ\tSN:chr2\tLN:500",
            "@SQ\tSN:chrM\tLN:16",
        ]

    def test_legacy_and_pairs_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            write_sam(
                [],
                io.StringIO(),
                reference_sequences=[("c", 1)],
                reference_name="c",
            )

    def test_missing_reference_info_rejected(self):
        with pytest.raises(ValueError, match="requires reference_sequences"):
            write_sam([], io.StringIO())
        with pytest.raises(ValueError, match="requires reference_sequences"):
            write_sam([], io.StringIO(), reference_name="c")


class TestHeader:
    def test_shape(self):
        header = sam_header([("chr1", 100), ("chr2", 50)])
        lines = header.strip().split("\n")
        assert lines[0].startswith("@HD")
        assert lines[1] == "@SQ\tSN:chr1\tLN:100"
        assert lines[2] == "@SQ\tSN:chr2\tLN:50"
        assert lines[3].startswith("@PG")
        assert header.endswith("\n")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            sam_header([("", 10)])

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            sam_header([("chr1", 0)])
