"""Unit tests for the end-to-end read mapper."""

import pytest

from repro.core.aligner import GenAsmAligner
from repro.core.prefilter import GenAsmFilter
from repro.mapping.index import KmerIndex
from repro.mapping.pipeline import ReadMapper, make_genasm_mapper
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import illumina_profile, simulate_reads


@pytest.fixture(scope="module")
def mapper_setup():
    genome = synthesize_genome(30_000, seed=10)
    mapper = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)
    reads = simulate_reads(
        genome, count=20, read_length=100, profile=illumina_profile(0.05), seed=11
    )
    return genome, mapper, reads


class TestMapping:
    def test_most_reads_map_to_origin(self, mapper_setup):
        genome, mapper, reads = mapper_setup
        correct = 0
        for read in reads:
            result = mapper.map_read(read.name, read.sequence)
            if result.record.is_mapped and abs(
                (result.record.position - 1) - read.true_start
            ) <= 15:
                correct += 1
        assert correct >= len(reads) * 0.9

    def test_reverse_strand_reads_map(self):
        genome = synthesize_genome(20_000, seed=12)
        mapper = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)
        fragment = genome.region(5_000, 120)
        read = genome.alphabet.reverse_complement(fragment)
        result = mapper.map_read("rev", read)
        assert result.record.is_mapped
        assert result.reverse
        assert abs((result.record.position - 1) - 5_000) <= 15

    def test_unmappable_read_reported_unmapped(self, mapper_setup, rng):
        from tests.conftest import random_dna

        _, mapper, _ = mapper_setup
        result = mapper.map_read("junk", random_dna(60, rng))
        # Either unmapped or (rarely) a spurious low-quality hit.
        if not result.record.is_mapped:
            assert result.alignment is None

    def test_short_read_below_seed_length_unmapped(self, mapper_setup):
        _, mapper, _ = mapper_setup
        result = mapper.map_read("tiny", "ACGT")
        assert not result.record.is_mapped

    def test_stats_accumulate(self):
        genome = synthesize_genome(15_000, seed=13)
        mapper = make_genasm_mapper(genome, seed_length=13)
        reads = simulate_reads(
            genome, count=5, read_length=100, profile=illumina_profile(), seed=14
        )
        for read in reads:
            mapper.map_read(read.name, read.sequence)
        assert mapper.stats.reads == 5
        assert mapper.stats.alignments_run >= mapper.stats.mapped

    def test_prefilter_reduces_alignments(self):
        genome = synthesize_genome(
            40_000, seed=15, repeat_fraction=0.35, repeat_unit_length=300
        )
        index = KmerIndex.build(genome, k=11)
        reads = simulate_reads(
            genome, count=15, read_length=100, profile=illumina_profile(), seed=16
        )
        unfiltered = ReadMapper(genome=genome, index=index, error_rate=0.10)
        filtered = ReadMapper(
            genome=genome,
            index=index,
            error_rate=0.10,
            prefilter=GenAsmFilter(threshold=15),
        )
        for read in reads:
            unfiltered.map_read(read.name, read.sequence)
            filtered.map_read(read.name, read.sequence)
        assert filtered.stats.alignments_run <= unfiltered.stats.alignments_run
        assert filtered.stats.mapped >= unfiltered.stats.mapped * 0.9

    def test_error_rate_validation(self):
        genome = synthesize_genome(1_000, seed=17)
        index = KmerIndex.build(genome, k=11)
        with pytest.raises(ValueError):
            ReadMapper(genome=genome, index=index, error_rate=1.5)


class TestCrossReadBatching:
    """map_reads batches candidates across reads; results must be identical
    to mapping each read alone, with identical stats."""

    @pytest.fixture(scope="class")
    def setup(self):
        genome = synthesize_genome(25_000, seed=21)
        reads = simulate_reads(
            genome,
            count=16,
            read_length=100,
            profile=illumina_profile(0.05),
            seed=22,
        )
        return genome, [(read.name, read.sequence) for read in reads]

    def test_map_reads_equals_sequential_map_read(self, setup):
        genome, pairs = setup
        sequential = make_genasm_mapper(genome, seed_length=13)
        batched = make_genasm_mapper(genome, seed_length=13)
        expected = [sequential.map_read(n, s) for n, s in pairs]
        actual = batched.map_reads(pairs)
        for exp, act in zip(expected, actual):
            assert exp.record.to_line() == act.record.to_line()
            assert exp.candidate_position == act.candidate_position
            assert exp.reverse == act.reverse
        assert sequential.stats == batched.stats

    def test_map_reads_without_prefilter(self, setup):
        genome, pairs = setup
        sequential = make_genasm_mapper(
            genome, seed_length=13, use_prefilter=False
        )
        batched = make_genasm_mapper(
            genome, seed_length=13, use_prefilter=False
        )
        expected = [sequential.map_read(n, s) for n, s in pairs]
        actual = batched.map_reads(pairs)
        for exp, act in zip(expected, actual):
            assert exp.record.to_line() == act.record.to_line()
        assert sequential.stats == batched.stats

    def test_map_reads_mixed_short_and_normal(self, setup):
        genome, pairs = setup
        mixed = [pairs[0], ("tiny", "ACGT"), pairs[1]]
        mapper = make_genasm_mapper(genome, seed_length=13)
        results = mapper.map_reads(mixed)
        assert len(results) == 3
        assert not results[1].record.is_mapped
        assert results[0].record.query_name == pairs[0][0]
        assert results[2].record.query_name == pairs[1][0]

    def test_map_reads_empty(self, setup):
        genome, _ = setup
        mapper = make_genasm_mapper(genome, seed_length=13)
        assert mapper.map_reads([]) == []
        assert mapper.stats.reads == 0

    def test_map_reads_concurrent_matches_map_reads(self, setup):
        import asyncio

        genome, pairs = setup
        direct = make_genasm_mapper(genome, seed_length=13)
        concurrent = make_genasm_mapper(genome, seed_length=13)
        expected = direct.map_reads(pairs)
        actual = asyncio.run(
            concurrent.map_reads_concurrent(
                pairs, batch_size=4, flush_interval=0.001
            )
        )
        for exp, act in zip(expected, actual):
            assert exp.record.to_line() == act.record.to_line()
        assert direct.stats == concurrent.stats


class TestMapReadsBatch:
    """map_reads_batch: sharded fan-out when possible, map_reads otherwise."""

    @pytest.fixture(scope="class")
    def setup(self):
        genome = synthesize_genome(18_000, seed=41)
        reads = simulate_reads(
            genome,
            count=10,
            read_length=90,
            profile=illumina_profile(0.05),
            seed=42,
        )
        return genome, [(read.name, read.sequence) for read in reads]

    def test_in_process_engine_falls_back_to_map_reads(self, setup):
        genome, pairs = setup
        batched = make_genasm_mapper(genome, engine="pure")
        direct = make_genasm_mapper(genome, engine="pure")
        got = batched.map_reads_batch(pairs)
        expected = direct.map_reads(pairs)
        assert [r.record.to_line() for r in got] == [
            r.record.to_line() for r in expected
        ]
        assert batched.stats == direct.stats

    def test_custom_aligner_is_not_shardable(self, setup):
        genome, pairs = setup
        mapper = make_genasm_mapper(genome)
        custom = ReadMapper(
            genome=genome,
            index=mapper.index,
            aligner=lambda region, read: GenAsmAligner().align(region, read),
        )
        assert custom.shard_spec() is None
        # Mapping still works through the in-process path.
        results = custom.map_reads_batch(pairs[:3])
        assert len(results) == 3

    def test_custom_batch_aligner_is_not_shardable(self, setup):
        genome, pairs = setup
        mapper = make_genasm_mapper(genome)
        genasm = GenAsmAligner()
        custom = ReadMapper(
            genome=genome,
            index=mapper.index,
            batch_aligner=lambda batch: genasm.align_batch(batch),
        )
        # A worker could not rebuild the custom batch aligner; sharding
        # it would silently swap in the default one.
        assert custom.shard_spec() is None

    def test_custom_prefilter_is_not_shardable(self, setup):
        genome, pairs = setup
        mapper = make_genasm_mapper(genome)

        class AlwaysAccept:
            def accepts(self, reference, read):
                return True

        custom = ReadMapper(
            genome=genome, index=mapper.index, prefilter=AlwaysAccept()
        )
        assert custom.shard_spec() is None

    def test_default_mapper_spec_round_trips(self, setup):
        genome, pairs = setup
        mapper = make_genasm_mapper(genome)
        spec = mapper.shard_spec()
        assert spec is not None
        rebuilt = spec.build("pure")
        expected = mapper.map_reads(pairs)
        got = rebuilt.map_reads(pairs)
        assert [r.record.to_line() for r in got] == [
            r.record.to_line() for r in expected
        ]
        assert rebuilt.stats == mapper.stats
