"""Unit tests for the k-mer index."""

import pytest

from repro.mapping.index import KmerIndex
from repro.sequences.genome import Genome, synthesize_genome


class TestBuild:
    def test_every_kmer_indexed(self):
        genome = Genome("g", "ACGTACGT")
        index = KmerIndex.build(genome, k=4)
        assert index.lookup("ACGT") == [0, 4]
        assert index.lookup("CGTA") == [1]

    def test_lookup_absent_seed(self):
        genome = Genome("g", "AAAAAAA")
        index = KmerIndex.build(genome, k=3)
        assert index.lookup("CCC") == []

    def test_lookup_wrong_length_rejected(self):
        index = KmerIndex.build(Genome("g", "ACGTACGT"), k=4)
        with pytest.raises(ValueError):
            index.lookup("ACG")

    def test_frequency_masking(self):
        genome = Genome("g", "A" * 100 + "CGT")
        index = KmerIndex.build(genome, k=3, max_occurrences=10)
        assert index.lookup("AAA") == []  # masked as a repeat
        assert index.masked_seeds >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            KmerIndex.build(Genome("g", "ACGT"), k=0)
        with pytest.raises(ValueError):
            KmerIndex.build(Genome("g", "AC"), k=4)

    def test_contains_and_len(self):
        index = KmerIndex.build(Genome("g", "ACGTAC"), k=3)
        assert "ACG" in index
        assert "TTT" not in index
        assert len(index) == 4  # ACG CGT GTA TAC

    def test_synthetic_genome_scale(self):
        genome = synthesize_genome(20_000, seed=0)
        index = KmerIndex.build(genome, k=15)
        assert len(index) > 15_000  # mostly unique 15-mers
