"""Unit tests for the CI bench regression gate's comparison logic."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_regression import (  # noqa: E402
    GATE_SPECS,
    GateSpec,
    Invariant,
    check_invariants,
    config_key,
    find_metric_regressions,
    find_regressions,
    gate_artifact,
)


def row(task="align", backend="batched", rate=1000.0, batch=64, **kw):
    return {
        "task": task,
        "backend": backend,
        "read_length": kw.get("read_length", 100),
        "error_rate": kw.get("error_rate", 0.05),
        "batch_size": batch,
        "pairs_per_sec": rate,
    }


class TestFindRegressions:
    def test_no_regression_when_faster(self):
        regs, compared = find_regressions(
            [row(rate=1000)], [row(rate=2000)], threshold=0.4
        )
        assert regs == []
        assert compared == 1

    def test_drop_within_threshold_passes(self):
        regs, _ = find_regressions(
            [row(rate=1000)], [row(rate=601)], threshold=0.4
        )
        assert regs == []

    def test_drop_past_threshold_fails(self):
        regs, _ = find_regressions(
            [row(rate=1000)], [row(rate=599)], threshold=0.4
        )
        assert len(regs) == 1
        assert regs[0]["ratio"] < 0.6
        assert regs[0]["baseline_pairs_per_sec"] == 1000

    def test_small_batches_ignored(self):
        regs, compared = find_regressions(
            [row(rate=1000, batch=8)],
            [row(rate=10, batch=8)],
            threshold=0.4,
        )
        assert regs == []
        assert compared == 0  # caller must treat zero comparisons as FAIL

    def test_only_overlapping_configs_compared(self):
        baseline = [row(task="align", rate=1000)]
        fresh = [
            row(task="align", rate=900),
            row(task="traceback_dc", rate=5),  # absent from baseline
        ]
        regs, compared = find_regressions(baseline, fresh, threshold=0.4)
        assert regs == []
        assert compared == 1

    def test_mixed_results_report_only_regressed(self):
        baseline = [
            row(task="align", rate=1000),
            row(task="prefilter", rate=5000),
        ]
        fresh = [
            row(task="align", rate=100),
            row(task="prefilter", rate=4999),
        ]
        regs, compared = find_regressions(baseline, fresh, threshold=0.4)
        assert compared == 2
        assert [r["task"] for r in regs] == ["align"]

    def test_config_key_distinguishes_every_axis(self):
        base = row()
        variants = [
            row(task="prefilter"),
            row(backend="pure"),
            row(read_length=150),
            row(error_rate=0.15),
            row(batch=256),
        ]
        keys = {config_key(base)} | {config_key(v) for v in variants}
        assert len(keys) == 6


class TestInvariant:
    def test_holds_and_violates(self):
        doc = {"summary": {"speedup": 5.0}}
        assert Invariant("summary.speedup", ">=", 2.0).check(doc) == (
            True,
            5.0,
        )
        assert Invariant("summary.speedup", ">=", 9.0).check(doc)[0] is False
        assert Invariant("summary.speedup", "<=", 9.0).check(doc)[0] is True

    def test_missing_path_fails_not_skips(self):
        holds, observed = Invariant("summary.absent", ">=", 1.0).check(
            {"summary": {}}
        )
        assert holds is False
        assert observed is None

    def test_non_numeric_value_fails(self):
        doc = {"summary": {"speedup": "fast"}}
        assert Invariant("summary.speedup", ">=", 1.0).check(doc)[0] is False

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Invariant("summary.x", "==", 1.0).check({"summary": {"x": 1.0}})


SPEC = GateSpec(
    name="demo",
    metric="goodput_per_sec",
    key_fields=("workload", "policy"),
    threshold=0.5,
)


def demo_row(workload="w", policy="p", rate=100.0):
    return {"workload": workload, "policy": policy, "goodput_per_sec": rate}


class TestFindMetricRegressions:
    def test_spec_metric_and_keys_drive_comparison(self):
        regs, compared = find_metric_regressions(
            [demo_row(rate=100), demo_row(policy="q", rate=100)],
            [demo_row(rate=90), demo_row(policy="q", rate=10)],
            SPEC,
        )
        assert compared == 2
        assert len(regs) == 1
        assert regs[0]["key"] == {"workload": "w", "policy": "q"}
        assert regs[0]["baseline_goodput_per_sec"] == 100

    def test_row_filter_excludes_rows(self):
        spec = GateSpec(
            name="demo",
            metric="goodput_per_sec",
            key_fields=("workload", "policy"),
            threshold=0.5,
            row_filter=lambda r: r["workload"] != "tiny",
        )
        regs, compared = find_metric_regressions(
            [demo_row("tiny", rate=100)], [demo_row("tiny", rate=1)], spec
        )
        assert regs == []
        assert compared == 0

    def test_rows_missing_the_metric_are_skipped(self):
        regs, compared = find_metric_regressions(
            [demo_row(rate=100)], [{"workload": "w", "policy": "p"}], SPEC
        )
        assert compared == 0


class TestGateSpecs:
    def test_all_seven_families_registered(self):
        assert set(GATE_SPECS) == {
            "batch_engine",
            "serving",
            "http",
            "cluster",
            "elastic",
            "qos",
            "wgs",
        }

    def test_every_committed_baseline_passes_its_gate(self):
        """The gate as CI runs it (--all, pre-smoke) must pass on the
        committed artifacts, including the elastic acceptance bars."""
        for spec in GATE_SPECS.values():
            assert gate_artifact(spec) == [], spec.name

    def test_elastic_spec_encodes_the_acceptance_bars(self):
        by_path = {
            inv.path: inv for inv in GATE_SPECS["elastic"].invariants
        }
        hedged = by_path["summary.hedged_p99_vs_unhedged_p99"]
        assert (hedged.op, hedged.value) == ("<=", 0.5)
        cache = by_path["summary.cache_speedup_repeated"]
        assert (cache.op, cache.value) == (">=", 5.0)

    def test_qos_spec_encodes_the_isolation_bounds(self):
        by_path = {
            inv.path: inv for inv in GATE_SPECS["qos"].invariants
        }
        p99 = by_path["summary.honest_p99_abuse_vs_solo"]
        assert (p99.op, p99.value) == ("<=", 2.0)
        goodput = by_path["summary.honest_goodput_abuse_vs_solo"]
        assert (goodput.op, goodput.value) == (">=", 0.8)
        throttled = by_path["summary.abuser_throttled_requests"]
        assert (throttled.op, throttled.value) == (">=", 1.0)


class TestGateArtifact:
    def test_missing_file_fails(self, tmp_path):
        failures = gate_artifact(SPEC, tmp_path / "BENCH_demo.json")
        assert failures and "missing" in failures[0]

    def test_unparseable_file_fails(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text("{not json")
        failures = gate_artifact(SPEC, path)
        assert failures and "unparseable" in failures[0]

    def test_empty_results_fail(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"results": []}))
        failures = gate_artifact(SPEC, path)
        assert any("no gated rows" in f for f in failures)

    def test_nonpositive_metric_fails(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps({"results": [demo_row(rate=0.0)]}))
        failures = gate_artifact(SPEC, path)
        assert any("invalid goodput_per_sec" in f for f in failures)

    def test_invariant_violations_reported_with_observed(self, tmp_path):
        spec = GateSpec(
            name="demo",
            metric="goodput_per_sec",
            key_fields=("workload", "policy"),
            invariants=(Invariant("summary.ratio", ">=", 0.5),),
        )
        path = tmp_path / "BENCH_demo.json"
        path.write_text(
            json.dumps(
                {"results": [demo_row()], "summary": {"ratio": 0.1}}
            )
        )
        failures = gate_artifact(spec, path)
        assert len(failures) == 1
        assert "0.1" in failures[0]

    def test_check_invariants_passes_clean_doc(self):
        spec = GATE_SPECS["cluster"]
        doc = {
            "summary": {
                "degraded_2rep_vs_healthy_2rep": 0.95,
                "single_degraded_vs_healthy_2rep": 0.1,
            }
        }
        assert check_invariants(spec, doc) == []
