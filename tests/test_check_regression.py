"""Unit tests for the CI bench regression gate's comparison logic."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_regression import config_key, find_regressions  # noqa: E402


def row(task="align", backend="batched", rate=1000.0, batch=64, **kw):
    return {
        "task": task,
        "backend": backend,
        "read_length": kw.get("read_length", 100),
        "error_rate": kw.get("error_rate", 0.05),
        "batch_size": batch,
        "pairs_per_sec": rate,
    }


class TestFindRegressions:
    def test_no_regression_when_faster(self):
        regs, compared = find_regressions(
            [row(rate=1000)], [row(rate=2000)], threshold=0.4
        )
        assert regs == []
        assert compared == 1

    def test_drop_within_threshold_passes(self):
        regs, _ = find_regressions(
            [row(rate=1000)], [row(rate=601)], threshold=0.4
        )
        assert regs == []

    def test_drop_past_threshold_fails(self):
        regs, _ = find_regressions(
            [row(rate=1000)], [row(rate=599)], threshold=0.4
        )
        assert len(regs) == 1
        assert regs[0]["ratio"] < 0.6
        assert regs[0]["baseline_pairs_per_sec"] == 1000

    def test_small_batches_ignored(self):
        regs, compared = find_regressions(
            [row(rate=1000, batch=8)],
            [row(rate=10, batch=8)],
            threshold=0.4,
        )
        assert regs == []
        assert compared == 0  # caller must treat zero comparisons as FAIL

    def test_only_overlapping_configs_compared(self):
        baseline = [row(task="align", rate=1000)]
        fresh = [
            row(task="align", rate=900),
            row(task="traceback_dc", rate=5),  # absent from baseline
        ]
        regs, compared = find_regressions(baseline, fresh, threshold=0.4)
        assert regs == []
        assert compared == 1

    def test_mixed_results_report_only_regressed(self):
        baseline = [
            row(task="align", rate=1000),
            row(task="prefilter", rate=5000),
        ]
        fresh = [
            row(task="align", rate=100),
            row(task="prefilter", rate=4999),
        ]
        regs, compared = find_regressions(baseline, fresh, threshold=0.4)
        assert compared == 2
        assert [r["task"] for r in regs] == ["align"]

    def test_config_key_distinguishes_every_axis(self):
        base = row()
        variants = [
            row(task="prefilter"),
            row(backend="pure"),
            row(read_length=150),
            row(error_rate=0.15),
            row(batch=256),
        ]
        keys = {config_key(base)} | {config_key(v) for v in variants}
        assert len(keys) == 6
