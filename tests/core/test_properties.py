"""Hypothesis property tests on the core invariants.

These pin down the semantic relationships between the paper's algorithm and
the classical ground truths:

* Bitap (Algorithm 1) is sandwiched between infix DP and infix DP + 1
  (the all-ones initialization forbids pattern-end overhang, DESIGN.md §5);
* multi-word and integer bitvector semantics agree bit for bit;
* the windowed aligner always emits a transcript that is *valid* and whose
  edit count upper-bounds the global optimum;
* Myers' algorithm equals DP everywhere.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.myers import myers_global, myers_semiglobal
from repro.baselines.needleman_wunsch import (
    edit_distance_dp,
    semiglobal_distance_dp,
)
from repro.core.aligner import genasm_align
from repro.core.bitap import bitap_edit_distance, bitap_scan, bitap_scan_multiword
from repro.core.edit_distance import genasm_edit_distance

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)
short_dna = st.text(alphabet="ACGT", min_size=1, max_size=16)


@settings(max_examples=120, deadline=None)
@given(text=dna, pattern=short_dna)
def test_bitap_sandwiched_by_infix_dp(text, pattern):
    infix = semiglobal_distance_dp(text, pattern)
    bitap = bitap_edit_distance(text, pattern, len(pattern))
    assert bitap is not None
    assert infix <= bitap <= infix + 1


@settings(max_examples=60, deadline=None)
@given(text=dna, pattern=short_dna, word_size=st.sampled_from([1, 2, 5, 64]))
def test_multiword_bitap_equals_int_bitap(text, pattern, word_size):
    k = min(3, len(pattern))
    assert bitap_scan(text, pattern, k) == bitap_scan_multiword(
        text, pattern, k, word_size=word_size
    )


@settings(max_examples=100, deadline=None)
@given(a=dna, b=dna)
def test_myers_global_equals_dp(a, b):
    assert myers_global(a, b) == edit_distance_dp(a, b)


@settings(max_examples=100, deadline=None)
@given(text=dna, pattern=short_dna)
def test_myers_semiglobal_equals_infix_dp(text, pattern):
    assert myers_semiglobal(text, pattern) == semiglobal_distance_dp(text, pattern)


@settings(max_examples=80, deadline=None)
@given(text=dna, pattern=short_dna)
def test_genasm_alignment_transcript_valid(text, pattern):
    alignment = genasm_align(text, pattern)
    assert alignment.cigar.is_valid_for(text, pattern)
    assert alignment.cigar.query_length == len(pattern)
    assert alignment.text_consumed <= len(text)


@settings(max_examples=80, deadline=None)
@given(a=dna, b=dna)
def test_genasm_edit_distance_upper_bounds_dp(a, b):
    result = genasm_edit_distance(a, b)
    assert result.distance >= edit_distance_dp(a, b)
    assert result.distance <= len(a) + len(b)


@settings(max_examples=80, deadline=None)
@given(a=dna)
def test_genasm_edit_distance_identity(a):
    assert genasm_edit_distance(a, a).distance == 0


@settings(max_examples=60, deadline=None)
@given(a=dna, b=dna)
def test_genasm_edit_distance_symmetry_bound(a, b):
    """Windowed distance is not exactly symmetric (greedy direction), but
    both directions bound the same true distance from above."""
    truth = edit_distance_dp(a, b)
    assert genasm_edit_distance(a, b).distance >= truth
    assert genasm_edit_distance(b, a).distance >= truth
