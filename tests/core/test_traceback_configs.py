"""Traceback-config coverage across window representations.

GenASM-TB's case priority order is configurable (Section 6's partial
support for complex scoring schemes). These tests pin down that every
supported window representation — scalar SENE, scalar edge stores, and the
batched engine's packed uint64 windows — produces identical tracebacks
(ops, consumed counts, errors_used) under non-default orders and both
affine settings, and that full alignments agree backend-by-backend for
each config.
"""

import random

import pytest

from repro.core.aligner import GenAsmAligner
from repro.core.genasm_tb import traceback_window
from repro.core.scoring import ScoringScheme, TracebackCase, TracebackConfig
from repro.engine.pure import PurePythonEngine

PURE = PurePythonEngine()

#: Substitution checked dead last — mismatches prefer gap pairs.
GAPS_FIRST = TracebackConfig(
    order=(
        TracebackCase.INSERTION_EXTEND,
        TracebackCase.DELETION_EXTEND,
        TracebackCase.MATCH,
        TracebackCase.INSERTION_OPEN,
        TracebackCase.DELETION_OPEN,
        TracebackCase.SUBSTITUTION,
    )
)

#: Deletion checked before insertion, extensions demoted below opens.
DELETION_LEANING = TracebackConfig(
    order=(
        TracebackCase.MATCH,
        TracebackCase.DELETION_OPEN,
        TracebackCase.INSERTION_OPEN,
        TracebackCase.SUBSTITUTION,
        TracebackCase.DELETION_EXTEND,
        TracebackCase.INSERTION_EXTEND,
    )
)

#: Extend entries present but inert: affine=False compiles them away.
NON_AFFINE = TracebackConfig(affine=False)

CONFIGS = [
    pytest.param(TracebackConfig(), id="default-affine"),
    pytest.param(NON_AFFINE, id="non-affine"),
    pytest.param(GAPS_FIRST, id="substitution-last"),
    pytest.param(DELETION_LEANING, id="deletion-leaning"),
    pytest.param(
        TracebackConfig.from_scoring(ScoringScheme.bwa_mem()), id="bwa-mem"
    ),
    pytest.param(
        TracebackConfig.from_scoring(ScoringScheme.minimap2()), id="minimap2"
    ),
]


def random_jobs(count, seed, text_range=(1, 64), pattern_range=(1, 64)):
    rng = random.Random(seed)
    return [
        (
            "".join(
                rng.choice("ACGTN") for _ in range(rng.randint(*text_range))
            ),
            "".join(
                rng.choice("ACGT") for _ in range(rng.randint(*pattern_range))
            ),
        )
        for _ in range(count)
    ]


def window_variants(jobs):
    """The same DC windows in every representation, keyed for messages."""
    variants = {
        "pure-sene": PURE.run_dc_windows(jobs),
        "pure-edges": PURE.run_dc_windows(jobs, representation="edges"),
    }
    np = pytest.importorskip("numpy", reason="packed windows need NumPy")
    del np
    from repro.engine.batched import BatchedEngine

    variants["batched-packed"] = BatchedEngine(min_batch=1).run_dc_windows(jobs)
    return variants


class TestConfigParityAcrossRepresentations:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_window_tracebacks_identical(self, config):
        jobs = random_jobs(24, seed=0xBADC0DE)
        variants = window_variants(jobs)
        reference = [
            traceback_window(w, consume_limit=40, config=config)
            for w in variants.pop("pure-sene")
        ]
        for name, windows in variants.items():
            for job, expected, window in zip(jobs, reference, windows):
                actual = traceback_window(
                    window, consume_limit=40, config=config
                )
                assert actual.ops == expected.ops, (name, job)
                assert actual.text_consumed == expected.text_consumed, (
                    name,
                    job,
                )
                assert actual.pattern_consumed == expected.pattern_consumed, (
                    name,
                    job,
                )
                assert actual.errors_used == expected.errors_used, (name, job)

    @pytest.mark.parametrize("config", CONFIGS)
    def test_align_batch_identical_across_backends(self, config):
        pytest.importorskip("numpy")
        from repro.engine.batched import BatchedEngine

        pairs = random_jobs(
            12, seed=0xFEED, text_range=(5, 120), pattern_range=(1, 100)
        )
        pure_aligner = GenAsmAligner(engine=PURE, config=config)
        batched_aligner = GenAsmAligner(
            engine=BatchedEngine(min_batch=1), config=config
        )
        edges_aligner = GenAsmAligner(
            engine=PURE, config=config, window_representation="edges"
        )
        expected = pure_aligner.align_batch(pairs)
        for name, aligner in (
            ("batched", batched_aligner),
            ("pure-edges", edges_aligner),
        ):
            for exp, act in zip(expected, aligner.align_batch(pairs)):
                assert str(exp.cigar) == str(act.cigar), name
                assert exp.edit_distance == act.edit_distance, name
                assert exp.text_consumed == act.text_consumed, name


class TestAffineSemantics:
    def test_extends_gated_by_prev_op_on_every_representation(self):
        # A 3-base insertion: affine configs must keep the I-run contiguous
        # in every representation, non-affine may split it but all
        # representations must still agree with each other.
        jobs = [("ACGTACGT", "ACGGGGTACGT")]
        for config in (TracebackConfig(), NON_AFFINE):
            results = {
                name: traceback_window(
                    windows[0], consume_limit=1000, config=config
                )
                for name, windows in window_variants(jobs).items()
            }
            baseline = results.pop("pure-sene")
            for name, result in results.items():
                assert result == baseline, (name, config)
        affine_ops = traceback_window(
            window_variants(jobs)["pure-sene"][0],
            consume_limit=1000,
            config=TracebackConfig(),
        ).ops
        first = affine_ops.index("I")
        assert affine_ops[first : first + 3] == "III"

    def test_non_affine_equals_shadowed_extends(self):
        # affine=False compiles the extend entries away. That must be
        # observably identical to an affine config whose extends sit
        # *after* their open counterparts (an open always catches the same
        # zero bit first, so the extends are unreachable).
        shadowed = TracebackConfig(
            order=(
                TracebackCase.MATCH,
                TracebackCase.SUBSTITUTION,
                TracebackCase.INSERTION_OPEN,
                TracebackCase.DELETION_OPEN,
                TracebackCase.INSERTION_EXTEND,
                TracebackCase.DELETION_EXTEND,
            ),
            affine=True,
        )
        jobs = random_jobs(24, seed=0x5EED)
        for window in PURE.run_dc_windows(jobs):
            non_affine = traceback_window(
                window, consume_limit=40, config=NON_AFFINE
            )
            assert non_affine == traceback_window(
                window, consume_limit=40, config=shadowed
            )
