"""Unit tests for GenASM-DC window processing."""

import pytest

from repro.core.genasm_dc import (
    SeneWindowBitvectors,
    WindowBitvectors,
    WindowUnalignableError,
    run_dc_window,
)
from tests.conftest import random_dna


class TestWindowEditDistance:
    def test_exact_window(self):
        window = run_dc_window("ACGTACGT", "ACGTACGT")
        assert window.edit_distance == 0

    def test_single_substitution(self):
        window = run_dc_window("ACGTACGT", "ACCTACGT")
        assert window.edit_distance == 1

    def test_single_insertion_in_pattern(self):
        window = run_dc_window("ACGTACGT", "ACGGTACGT")
        assert window.edit_distance == 1

    def test_single_deletion_from_pattern(self):
        window = run_dc_window("ACGTACGT", "ACTACGT")
        assert window.edit_distance == 1

    def test_completely_dissimilar_costs_pattern_length(self):
        window = run_dc_window("AAAA", "TTTT")
        assert window.edit_distance == 4

    def test_budget_doubling_reaches_high_distances(self):
        # Start with budget 1; the window needs 4 errors.
        window = run_dc_window("AAAA", "TTTT", initial_budget=1)
        assert window.edit_distance == 4

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            run_dc_window("ACGT", "")

    def test_empty_text_rejected(self):
        with pytest.raises(WindowUnalignableError):
            run_dc_window("", "ACGT")


class TestStoredBitvectors:
    def test_match_bitvector_for_d0_is_r0(self):
        window = run_dc_window("ACGT", "ACGT")
        # Perfect match: R[0] at iteration 0 has MSB 0, visible via match_bit.
        assert window.match_bit(0, 0, len(window.pattern) - 1) == 0

    def test_substitution_derived_from_deletion(self):
        window = run_dc_window("ACGT", "AGGT")  # one substitution
        d = window.edit_distance
        assert d == 1
        # substitution_bit(p) must equal deletion_bit(p-1) for p > 0.
        for i in range(window.text_length):
            for p in range(1, window.pattern_length):
                assert window.substitution_bit(i, d, p) == window.deletion_bit(
                    i, d, p - 1
                )

    def test_substitution_lsb_always_zero(self):
        window = run_dc_window("ACGT", "AGGT")
        assert window.substitution_bit(0, window.edit_distance, 0) == 0

    def test_d0_has_no_error_bitvectors(self):
        window = run_dc_window("ACGT", "ACGT")
        assert window.insertion_bit(0, 0, 0) == 1
        assert window.deletion_bit(0, 0, 0) == 1
        assert window.substitution_bit(0, 0, 1) == 1

    def test_stored_bits_accounting_sene(self):
        # SENE keeps one R vector per (iteration, distance) cell, plus the
        # initial state row.
        window = run_dc_window("ACGTACGT", "ACGTACGT")
        expected = (
            (window.text_length + 1)
            * (window.k + 1)
            * window.pattern_length
        )
        assert window.stored_bits() == expected

    def test_stored_bits_accounting_edges(self):
        window = run_dc_window("ACGTACGT", "ACGTACGT", representation="edges")
        expected = window.text_length * 3 * window.k * window.pattern_length
        assert window.stored_bits() == expected

    def test_sene_footprint_is_about_a_third(self):
        sene = run_dc_window("ACGTACGT" * 8, "ACGTACGT" * 8)
        edges = run_dc_window(
            "ACGTACGT" * 8, "ACGTACGT" * 8, representation="edges"
        )
        assert sene.stored_bits() < edges.stored_bits() / 2.5


class TestRepresentations:
    def test_default_is_sene(self):
        assert isinstance(run_dc_window("ACGT", "ACGT"), SeneWindowBitvectors)

    def test_edges_returns_legacy_type(self):
        window = run_dc_window("ACGT", "ACGT", representation="edges")
        assert isinstance(window, WindowBitvectors)

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            run_dc_window("ACGT", "ACGT", representation="bogus")

    def test_sene_derives_identical_edge_bits(self, rng):
        """Every derived M/S/I/D bit matches the explicit edge stores."""
        for _ in range(20):
            text = random_dna(rng.randint(1, 24), rng)
            pattern = random_dna(rng.randint(1, 24), rng)
            sene = run_dc_window(text, pattern)
            edges = run_dc_window(text, pattern, representation="edges")
            assert sene.k == edges.k
            assert sene.edit_distance == edges.edit_distance
            for i in range(len(text)):
                for d in range(sene.k + 1):
                    assert sene.edge_vectors(i, d) == edges.edge_vectors(i, d)

    def test_sene_bit_accessors_match_edges(self):
        text, pattern = "CGTGA", "CTGA"
        sene = run_dc_window(text, pattern)
        edges = run_dc_window(text, pattern, representation="edges")
        for i in range(len(text)):
            for d in range(sene.k + 1):
                for p in range(len(pattern)):
                    assert sene.match_bit(i, d, p) == edges.match_bit(i, d, p)
                    assert sene.substitution_bit(i, d, p) == (
                        edges.substitution_bit(i, d, p)
                    )
                    assert sene.insertion_bit(i, d, p) == (
                        edges.insertion_bit(i, d, p)
                    )
                    assert sene.deletion_bit(i, d, p) == (
                        edges.deletion_bit(i, d, p)
                    )

    def test_sene_history_shape(self):
        window = run_dc_window("ACGTAC", "ACGTAC")
        assert len(window.r) == window.text_length + 1
        assert all(len(row) == window.k + 1 for row in window.r)
        # The final history row is the initial all-ones state.
        all_ones = (1 << window.pattern_length) - 1
        assert window.r[window.text_length] == [all_ones] * (window.k + 1)


class TestAgainstGroundTruth:
    def test_window_distance_not_below_global(self, rng):
        """The pinned-start window distance is at least the global optimum
        of the consumed region (it is an anchored alignment)."""
        from repro.baselines.needleman_wunsch import semiglobal_distance_dp

        for _ in range(25):
            text = random_dna(rng.randint(4, 20), rng)
            pattern = random_dna(rng.randint(2, len(text)), rng)
            window = run_dc_window(text, pattern)
            assert window.edit_distance >= semiglobal_distance_dp(text, pattern) - 1
            assert 0 <= window.edit_distance <= len(pattern)
