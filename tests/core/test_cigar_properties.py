"""Hypothesis property tests for CIGAR round trips and score algebra."""

from hypothesis import given, settings, strategies as st

from repro.core.cigar import Cigar, concat_all
from repro.core.scoring import ScoringScheme

ops_text = st.text(alphabet="MSID", min_size=0, max_size=60)
schemes = st.builds(
    ScoringScheme,
    match=st.integers(min_value=0, max_value=5),
    substitution=st.integers(min_value=-8, max_value=0),
    gap_open=st.integers(min_value=-10, max_value=0),
    gap_extend=st.integers(min_value=-4, max_value=0),
)


@settings(max_examples=150, deadline=None)
@given(ops=ops_text)
def test_string_round_trip(ops):
    cigar = Cigar(ops)
    assert Cigar.from_string(str(cigar)).ops == ops


@settings(max_examples=150, deadline=None)
@given(ops=ops_text)
def test_sam_round_trip(ops):
    cigar = Cigar(ops)
    assert Cigar.from_string(cigar.to_sam()).ops == ops


@settings(max_examples=100, deadline=None)
@given(ops=ops_text)
def test_length_identities(ops):
    cigar = Cigar(ops)
    assert cigar.reference_length + cigar.ops.count("I") == len(ops)
    assert cigar.query_length + cigar.ops.count("D") == len(ops)
    assert cigar.edit_distance + cigar.matches == len(ops)


@settings(max_examples=100, deadline=None)
@given(a=ops_text, b=ops_text, scheme=schemes)
def test_concat_score_superadditive_across_gap_joins(a, b, scheme):
    """Concatenation can merge a gap at the seam (one fewer gap-open), so
    the joint score is >= the sum of the parts, equal when no gap spans the
    boundary."""
    joint = concat_all([Cigar(a), Cigar(b)]).score(scheme)
    parts = Cigar(a).score(scheme) + Cigar(b).score(scheme)
    assert joint >= parts
    boundary_gap = a and b and a[-1] in "ID" and a[-1] == b[0]
    if not boundary_gap:
        assert joint == parts


@settings(max_examples=100, deadline=None)
@given(ops=ops_text)
def test_unit_scheme_score_is_negative_edit_distance(ops):
    cigar = Cigar(ops)
    assert cigar.score(ScoringScheme.unit()) == -cigar.edit_distance
