"""Unit tests for scoring schemes and traceback configuration."""

import pytest

from repro.core.scoring import (
    DEFAULT_ORDER,
    ScoringScheme,
    TracebackCase,
    TracebackConfig,
)


class TestScoringScheme:
    def test_bwa_mem_defaults(self):
        scheme = ScoringScheme.bwa_mem()
        assert (scheme.match, scheme.substitution) == (1, -4)
        assert (scheme.gap_open, scheme.gap_extend) == (-6, -1)

    def test_minimap2_defaults(self):
        scheme = ScoringScheme.minimap2()
        assert (scheme.match, scheme.substitution) == (2, -4)
        assert (scheme.gap_open, scheme.gap_extend) == (-4, -2)

    def test_gap_cost(self):
        scheme = ScoringScheme(match=1, substitution=-1, gap_open=-6, gap_extend=-1)
        assert scheme.gap_cost(0) == 0
        assert scheme.gap_cost(1) == -7
        assert scheme.gap_cost(3) == -9

    def test_negative_gap_length_rejected(self):
        with pytest.raises(ValueError):
            ScoringScheme.bwa_mem().gap_cost(-1)

    def test_positive_penalty_rejected(self):
        with pytest.raises(ValueError):
            ScoringScheme(match=1, substitution=2)
        with pytest.raises(ValueError):
            ScoringScheme(match=-1)


class TestTracebackConfig:
    def test_default_order_is_algorithm2(self):
        assert DEFAULT_ORDER[0] is TracebackCase.INSERTION_EXTEND
        assert DEFAULT_ORDER[2] is TracebackCase.MATCH
        assert DEFAULT_ORDER[3] is TracebackCase.SUBSTITUTION

    def test_from_scoring_keeps_substitution_first_when_cheap(self):
        # BWA-MEM: substitution (-4) cheaper than opening a gap (-7).
        config = TracebackConfig.from_scoring(ScoringScheme.bwa_mem())
        order = list(config.order)
        assert order.index(TracebackCase.SUBSTITUTION) < order.index(
            TracebackCase.INSERTION_OPEN
        )

    def test_from_scoring_demotes_expensive_substitution(self):
        # Substitution -10 worse than gap open -3 + extend -1 = -4.
        scheme = ScoringScheme(match=1, substitution=-10, gap_open=-3, gap_extend=-1)
        config = TracebackConfig.from_scoring(scheme)
        order = list(config.order)
        assert order.index(TracebackCase.SUBSTITUTION) > order.index(
            TracebackCase.DELETION_OPEN
        )

    def test_duplicate_case_rejected(self):
        with pytest.raises(ValueError):
            TracebackConfig(
                order=(
                    TracebackCase.MATCH,
                    TracebackCase.MATCH,
                    TracebackCase.SUBSTITUTION,
                    TracebackCase.INSERTION_OPEN,
                    TracebackCase.DELETION_OPEN,
                    TracebackCase.INSERTION_EXTEND,
                )
            )
