"""Unit tests for the GenASM edit-distance use case."""

from repro.core.edit_distance import genasm_edit_distance
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestBasics:
    def test_identical(self):
        assert genasm_edit_distance("ACGTACGT", "ACGTACGT").distance == 0

    def test_empty_cases(self):
        assert genasm_edit_distance("", "ACGT").distance == 4
        assert genasm_edit_distance("ACGT", "").distance == 4
        assert genasm_edit_distance("", "").distance == 0

    def test_single_edit_types(self):
        assert genasm_edit_distance("ACGTACGT", "ACCTACGT").distance == 1  # sub
        assert genasm_edit_distance("ACGTACGT", "ACGGTACGT").distance == 1  # ins
        assert genasm_edit_distance("ACGTACGT", "ACTACGT").distance == 1  # del

    def test_cigar_reporting_optional(self):
        result = genasm_edit_distance("ACGT", "ACGT")
        assert result.cigar is None
        result = genasm_edit_distance("ACGT", "ACGT", report_cigar=True)
        assert str(result.cigar) == "4M"

    def test_trailing_text_charged_as_deletions(self):
        result = genasm_edit_distance("ACGTAAAA", "ACGT", report_cigar=True)
        assert result.distance == 4
        assert result.cigar.ops.endswith("DDDD")


class TestAgainstGroundTruth:
    def test_upper_bounds_true_distance(self, rng):
        """Windowed greedy distance is an upper bound on the global optimum
        and equals it in the overwhelming majority of realistic cases."""
        from repro.baselines.needleman_wunsch import edit_distance_dp

        exact = 0
        trials = 30
        for _ in range(trials):
            a = random_dna(rng.randint(50, 200), rng)
            b = mutate(a, MutationProfile(0.08), rng=rng).sequence
            got = genasm_edit_distance(a, b).distance
            want = edit_distance_dp(a, b)
            assert got >= want
            if got == want:
                exact += 1
        assert exact >= trials * 0.7

    def test_cigar_distance_consistent(self, rng):
        for _ in range(15):
            a = random_dna(rng.randint(20, 100), rng)
            b = mutate(a, MutationProfile(0.1), rng=rng).sequence
            result = genasm_edit_distance(a, b, report_cigar=True)
            assert result.cigar.edit_distance == result.distance
            assert result.cigar.is_valid_for(a, b)
            # The reported CIGAR is global: consumes all of both sequences.
            assert result.cigar.reference_length == len(a)
            assert result.cigar.query_length == len(b)
