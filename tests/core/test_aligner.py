"""Unit tests for the windowed GenASM aligner."""

import pytest

from repro.core.aligner import GenAsmAligner, genasm_align
from repro.core.scoring import ScoringScheme
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestBasicAlignment:
    def test_perfect_match(self):
        alignment = genasm_align("ACGTACGT", "ACGTACGT")
        assert str(alignment.cigar) == "8M"
        assert alignment.edit_distance == 0
        assert alignment.text_consumed == 8

    def test_figure6_deletion(self):
        alignment = genasm_align("CGTGA", "CTGA")
        assert str(alignment.cigar) == "1M1D3M"
        assert alignment.edit_distance == 1

    def test_pattern_longer_than_text_pads_insertions(self):
        alignment = genasm_align("ACGT", "ACGTTT")
        assert alignment.cigar.query_length == 6
        assert alignment.cigar.ops.count("I") >= 2

    def test_empty_pattern_yields_empty_alignment(self):
        alignment = genasm_align("ACGT", "")
        assert str(alignment.cigar) == ""
        assert alignment.edit_distance == 0

    def test_cigar_always_valid(self, rng):
        for _ in range(30):
            text = random_dna(rng.randint(10, 200), rng)
            profile = MutationProfile(error_rate=rng.uniform(0.0, 0.2))
            pattern = mutate(text, profile, rng=rng).sequence
            region = text + random_dna(40, rng)
            alignment = genasm_align(region, pattern)
            assert alignment.cigar.is_valid_for(region, pattern)


class TestWindowingParameters:
    def test_invalid_window_params_rejected(self):
        with pytest.raises(ValueError):
            GenAsmAligner(window_size=0)
        with pytest.raises(ValueError):
            GenAsmAligner(window_size=32, overlap=32)
        with pytest.raises(ValueError):
            GenAsmAligner(window_size=32, overlap=-1)

    def test_small_windows_still_valid(self, rng):
        aligner = GenAsmAligner(window_size=16, overlap=4)
        for _ in range(10):
            text = random_dna(120, rng)
            pattern = mutate(text, MutationProfile(0.1), rng=rng).sequence
            alignment = aligner.align(text + "ACGTACGTACGT", pattern)
            assert alignment.cigar.is_valid_for(text + "ACGTACGTACGT", pattern)

    def test_paper_default_window_setting(self):
        aligner = GenAsmAligner()
        assert aligner.window_size == 64
        assert aligner.overlap == 24


class TestAccuracyAgainstOptimal:
    def test_never_below_global_optimum(self, rng):
        """Windowed alignment is a real alignment: its edit count cannot be
        below the global optimum of the consumed region."""
        from repro.baselines.needleman_wunsch import edit_distance_dp

        for _ in range(25):
            text = random_dna(rng.randint(20, 150), rng)
            pattern = mutate(text, MutationProfile(0.1), rng=rng).sequence
            region = text + random_dna(30, rng)
            alignment = genasm_align(region, pattern)
            consumed = region[: alignment.text_consumed]
            assert alignment.edit_distance >= edit_distance_dp(consumed, pattern)

    def test_usually_matches_optimum_at_low_error(self, rng):
        from repro.baselines.needleman_wunsch import edit_distance_dp

        exact = 0
        trials = 20
        for _ in range(trials):
            text = random_dna(100, rng)
            pattern = mutate(text, MutationProfile(0.05), rng=rng).sequence
            region = text + random_dna(20, rng)
            alignment = genasm_align(region, pattern)
            consumed = region[: alignment.text_consumed]
            if alignment.edit_distance == edit_distance_dp(consumed, pattern):
                exact += 1
        # The paper reports ~97-99% score accuracy; allow some slack at
        # this tiny sample size.
        assert exact >= trials * 0.8


class TestAlignLocated:
    def test_finds_offset_match(self):
        aligner = GenAsmAligner()
        text = "TTTTTTTTTT" + "ACGTACGTACGT" + "GGGG"
        result = aligner.align_located(text, "ACGTACGTACGT", k=2)
        assert result is not None
        assert result.text_start == 10
        assert result.edit_distance == 0

    def test_returns_none_when_no_match(self):
        aligner = GenAsmAligner()
        assert aligner.align_located("AAAAAAAA", "TTTT", k=1) is None


class TestScoringIntegration:
    def test_score_uses_scheme(self):
        alignment = genasm_align("ACGTACGT", "ACGTACGT")
        assert alignment.score(ScoringScheme.bwa_mem()) == 8
        assert alignment.score(ScoringScheme.minimap2()) == 16

    def test_scoring_param_reorders_traceback(self, rng):
        # Just verifies the plumbing: scoring-derived config yields a valid
        # alignment.
        text = random_dna(80, rng)
        pattern = mutate(text, MutationProfile(0.1), rng=rng).sequence
        alignment = genasm_align(
            text + "ACGT" * 5, pattern, scoring=ScoringScheme.minimap2()
        )
        assert alignment.cigar.is_valid_for(text + "ACGT" * 5, pattern)
