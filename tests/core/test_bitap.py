"""Unit tests for baseline Bitap (Algorithm 1), including Figure 3."""

import pytest

from repro.core.bitap import (
    bitap_edit_distance,
    bitap_scan,
    bitap_scan_multiword,
    pattern_bitmasks,
)
from repro.sequences.alphabet import AMINO_ACIDS, DNA


class TestPatternBitmasks:
    def test_figure3_masks(self):
        # Paper Figure 3: pattern CTGA -> PM(A)=1110, PM(C)=0111,
        # PM(G)=1101, PM(T)=1011.
        masks = pattern_bitmasks("CTGA")
        assert masks["A"] == 0b1110
        assert masks["C"] == 0b0111
        assert masks["G"] == 0b1101
        assert masks["T"] == 0b1011

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            pattern_bitmasks("")

    def test_wildcard_in_pattern_matches_nothing(self):
        masks = pattern_bitmasks("AN", DNA)
        # Position of N stays 1 in every mask.
        for symbol in "ACGT":
            assert masks[symbol] & 0b01

    def test_protein_alphabet(self):
        masks = pattern_bitmasks("ARN", AMINO_ACIDS)
        assert masks["A"] == 0b011
        assert masks["R"] == 0b101
        assert masks["N"] == 0b110

    def test_foreign_symbol_rejected(self):
        with pytest.raises(ValueError):
            pattern_bitmasks("AXGT", DNA)


class TestBitapScan:
    def test_figure3_example(self):
        # CGTGA vs CTGA with k=1: alignments found at locations 2, 1, 0.
        matches = bitap_scan("CGTGA", "CTGA", 1)
        assert [(m.start, m.distance) for m in matches] == [(2, 1), (1, 1), (0, 1)]

    def test_exact_match_k0(self):
        matches = bitap_scan("AAACGTAAA", "ACGT", 0)
        assert [(m.start, m.distance) for m in matches] == [(2, 0)]

    def test_no_match_within_threshold(self):
        assert bitap_scan("AAAA", "TTTT", 1) == []

    def test_reports_smallest_distance_per_location(self):
        matches = bitap_scan("ACGT", "ACGT", 2)
        at_zero = [m for m in matches if m.start == 0]
        assert at_zero and at_zero[0].distance == 0

    def test_first_match_only_stops_early(self):
        matches = bitap_scan("ACGTACGT", "ACGT", 0, first_match_only=True)
        assert len(matches) == 1
        assert matches[0].start == 4  # right-most (scan goes backwards)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            bitap_scan("ACGT", "ACGT", -1)


class TestBitapEditDistance:
    def test_identical(self):
        assert bitap_edit_distance("ACGTACGT", "ACGTACGT", 0) == 0

    def test_single_substitution(self):
        assert bitap_edit_distance("ACGTACGT", "ACGTTCGT", 8) == 1

    def test_below_threshold_returns_none(self):
        assert bitap_edit_distance("AAAAAAA", "TTTTTTT", 2) is None

    def test_free_leading_text(self):
        # Pattern matches a suffix region; leading text is free.
        assert bitap_edit_distance("TTTTTACGT", "ACGT", 0) == 0

    def test_paper_quirk_leading_query_deletion_is_free(self):
        # Footnote 4: a deletion at the first query position is absorbed
        # by the free text prefix, making the distance one lower than the
        # global edit distance.
        reference = "GACGTACGTA"
        read = "ACGTACGTA"  # reference with its first character deleted
        assert bitap_edit_distance(reference, read, 3) == 0


class TestMultiwordEquivalence:
    @pytest.mark.parametrize("word_size", [1, 3, 8, 64])
    def test_matches_int_backend(self, word_size, rng):
        from tests.conftest import random_dna

        for _ in range(10):
            text = random_dna(rng.randint(4, 24), rng)
            pattern = random_dna(rng.randint(2, 12), rng)
            k = rng.randint(0, 3)
            fast = bitap_scan(text, pattern, k)
            slow = bitap_scan_multiword(text, pattern, k, word_size=word_size)
            assert fast == slow

    def test_first_match_only_stops_early(self):
        matches = bitap_scan_multiword(
            "ACGTACGT", "ACGT", 0, first_match_only=True
        )
        assert matches == bitap_scan(
            "ACGTACGT", "ACGT", 0, first_match_only=True
        )
        assert len(matches) == 1
        assert matches[0].start == 4  # right-most (scan goes backwards)

    @pytest.mark.parametrize("word_size", [2, 64])
    def test_first_match_only_matches_int_backend(self, word_size, rng):
        from tests.conftest import random_dna

        for _ in range(10):
            text = random_dna(rng.randint(4, 24), rng)
            pattern = random_dna(rng.randint(2, 12), rng)
            k = rng.randint(0, 3)
            assert bitap_scan_multiword(
                text, pattern, k, word_size=word_size, first_match_only=True
            ) == bitap_scan(text, pattern, k, first_match_only=True)
