"""Edge-case and failure-injection tests for the windowed core.

These exercise the corners the main suites do not: degenerate window
geometries, error-type-skewed reads (insertion-heavy PacBio vs
deletion-heavy ONT mixes), ambiguous bases, and boundary conditions at the
very start/end of the matched region.
"""


from repro.core.aligner import GenAsmAligner, genasm_align
from repro.core.bitap import bitap_edit_distance, bitap_scan
from repro.core.genasm_dc import run_dc_window
from repro.core.genasm_tb import traceback_window
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestDegenerateWindows:
    def test_window_size_one(self):
        aligner = GenAsmAligner(window_size=1, overlap=0)
        alignment = aligner.align("ACGT", "ACGT")
        assert str(alignment.cigar) == "4M"

    def test_window_size_two_with_errors(self):
        aligner = GenAsmAligner(window_size=2, overlap=0)
        alignment = aligner.align("ACGTACGT", "ACCTACGT")
        assert alignment.cigar.is_valid_for("ACGTACGT", "ACCTACGT")

    def test_zero_overlap(self, rng):
        aligner = GenAsmAligner(window_size=32, overlap=0)
        text = random_dna(200, rng)
        pattern = mutate(text, MutationProfile(0.05), rng=rng).sequence
        alignment = aligner.align(text + "ACGTACGT", pattern)
        assert alignment.cigar.is_valid_for(text + "ACGTACGT", pattern)

    def test_overlap_one_below_window(self, rng):
        # W - O = 1: one character consumed per window — slow but correct.
        aligner = GenAsmAligner(window_size=8, overlap=7)
        alignment = aligner.align("ACGTACGTAC", "ACGTACGTAC")
        assert str(alignment.cigar) == "10M"


class TestErrorTypeSkews:
    def test_insertion_heavy_read(self, rng):
        """PacBio-like: most errors are insertions (pattern > text)."""
        text = random_dna(300, rng)
        profile = MutationProfile(0.15, 0.05, 0.90, 0.05)
        pattern = mutate(text, profile, rng=rng).sequence
        assert len(pattern) > len(text)
        alignment = genasm_align(text, pattern)
        assert alignment.cigar.is_valid_for(text, pattern)
        assert alignment.cigar.ops.count("I") > alignment.cigar.ops.count("D")

    def test_deletion_heavy_read(self, rng):
        """ONT-like lean: deletions dominate (pattern < text)."""
        text = random_dna(300, rng)
        profile = MutationProfile(0.15, 0.05, 0.05, 0.90)
        pattern = mutate(text, profile, rng=rng).sequence
        assert len(pattern) < len(text)
        alignment = genasm_align(text, pattern)
        assert alignment.cigar.is_valid_for(text, pattern)
        assert alignment.cigar.ops.count("D") > alignment.cigar.ops.count("I")

    def test_burst_error(self, rng):
        """A contiguous 20-base corruption inside an otherwise clean read."""
        text = random_dna(200, rng)
        burst = random_dna(20, rng)
        pattern = text[:90] + burst + text[110:]
        alignment = genasm_align(text + "ACGT" * 4, pattern)
        assert alignment.cigar.is_valid_for(text + "ACGT" * 4, pattern)
        assert alignment.edit_distance <= 45  # bounded damage


class TestAmbiguousBases:
    def test_wildcard_in_text_never_matches(self):
        matches = bitap_scan("ACGNACGT", "ACGT", 0)
        assert [(m.start, m.distance) for m in matches] == [(4, 0)]

    def test_wildcard_costs_one_edit(self):
        assert bitap_edit_distance("ACGNACGT", "ACGTACGT", 2) == 1

    def test_alignment_over_wildcards(self):
        alignment = genasm_align("ACGNNCGT", "ACGTACGT")
        assert alignment.cigar.query_length == 8
        assert alignment.edit_distance >= 2


class TestBoundaryConditions:
    def test_single_character_sequences(self):
        assert genasm_align("A", "A").edit_distance == 0
        assert genasm_align("A", "C").edit_distance == 1
        assert bitap_edit_distance("A", "A", 0) == 0

    def test_pattern_equals_window_size(self, rng):
        pattern = random_dna(64, rng)
        alignment = genasm_align(pattern, pattern)
        assert str(alignment.cigar) == "64M"

    def test_pattern_one_over_window_size(self, rng):
        pattern = random_dna(65, rng)
        alignment = genasm_align(pattern, pattern)
        assert str(alignment.cigar) == "65M"

    def test_all_errors_at_pattern_end(self, rng):
        from repro.baselines.needleman_wunsch import edit_distance_dp

        text = random_dna(100, rng)
        pattern = text[:90] + "".join(
            "T" if c != "T" else "A" for c in text[90:]
        )
        region = text + "ACGT"
        alignment = genasm_align(region, pattern)
        assert alignment.cigar.is_valid_for(region, pattern)
        # Ten substitutions is an upper bound; indels may beat it, but the
        # result can never be below the anchored global optimum.
        consumed = region[: alignment.text_consumed]
        assert (
            edit_distance_dp(consumed, pattern)
            <= alignment.edit_distance
            <= 10
        )

    def test_all_errors_at_pattern_start(self, rng):
        from repro.baselines.needleman_wunsch import edit_distance_dp

        text = random_dna(100, rng)
        head = "".join("T" if c != "T" else "A" for c in text[:10])
        pattern = head + text[10:]
        region = text + "ACGT"
        alignment = genasm_align(region, pattern)
        assert alignment.cigar.is_valid_for(region, pattern)
        consumed = region[: alignment.text_consumed]
        assert (
            edit_distance_dp(consumed, pattern)
            <= alignment.edit_distance
            <= 10
        )


class TestTracebackRobustness:
    def test_consume_limit_larger_than_window(self):
        window = run_dc_window("ACGT", "ACGT")
        result = traceback_window(window, consume_limit=1000)
        assert result.ops == "MMMM"

    def test_repeated_alignment_is_deterministic(self, rng):
        text = random_dna(150, rng)
        pattern = mutate(text, MutationProfile(0.1), rng=rng).sequence
        first = genasm_align(text + "ACGT" * 4, pattern)
        second = genasm_align(text + "ACGT" * 4, pattern)
        assert str(first.cigar) == str(second.cigar)

    def test_homopolymer_runs(self):
        # Homopolymers are the classic indel trap for nanopore data.
        text = "ACG" + "T" * 30 + "GCA"
        pattern = "ACG" + "T" * 27 + "GCA"
        alignment = genasm_align(text, pattern)
        assert alignment.cigar.is_valid_for(text, pattern)
        assert alignment.edit_distance == 3

    def test_tandem_repeat_alignment(self):
        text = "ACGTACGTACGTACGTACGT"
        pattern = "ACGTACGTACGTACGT"  # one repeat unit fewer
        alignment = genasm_align(text, pattern)
        assert alignment.cigar.is_valid_for(text, pattern)
        assert alignment.edit_distance <= 4
