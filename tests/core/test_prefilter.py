"""Unit tests for the GenASM pre-alignment filter."""

import pytest

from repro.core.prefilter import GenAsmFilter
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestDecisions:
    def test_identical_pair_accepted(self):
        decision = GenAsmFilter(0).decide("ACGTACGT", "ACGTACGT")
        assert decision.accepted
        assert decision.distance == 0

    def test_dissimilar_pair_rejected(self):
        decision = GenAsmFilter(2).decide("AAAAAAAA", "TTTTTTTT")
        assert not decision.accepted
        assert decision.distance is None

    def test_boundary_distance_accepted(self):
        # Exactly threshold edits must pass.
        decision = GenAsmFilter(1).decide("ACGTACGT", "ACCTACGT")
        assert decision.accepted
        assert decision.distance == 1

    def test_empty_read_accepted(self):
        assert GenAsmFilter(5).decide("ACGT", "").accepted

    def test_empty_reference_rejected(self):
        assert not GenAsmFilter(5).decide("", "ACGT").accepted

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            GenAsmFilter(-1)


class TestFilterProperties:
    def test_zero_false_reject_on_mutated_pairs(self, rng):
        """Pairs with <= threshold injected edits must always pass (the
        paper's 0% false reject claim)."""
        threshold = 5
        filt = GenAsmFilter(threshold)
        for _ in range(40):
            reference = random_dna(100, rng)
            result = mutate(reference, MutationProfile(0.02), rng=rng)
            if result.edit_count <= threshold:
                assert filt.accepts(reference, result.sequence)

    def test_distance_never_exceeds_global(self, rng):
        """The filter's semi-global distance is at most the global edit
        distance for typical (region >= read) filtering inputs."""
        from repro.baselines.needleman_wunsch import edit_distance_dp

        filt = GenAsmFilter(30)
        for _ in range(25):
            read = random_dna(rng.randint(10, 40), rng)
            region = random_dna(5, rng) + read + random_dna(5, rng)
            decision = filt.decide(region, read)
            assert decision.accepted
            assert decision.distance <= edit_distance_dp(region, read)

    def test_filter_pairs_batch(self, rng):
        filt = GenAsmFilter(3)
        pairs = []
        for _ in range(10):
            ref = random_dna(50, rng)
            pairs.append((ref, ref))
        decisions = filt.filter_pairs(pairs)
        assert all(d.accepted and d.distance == 0 for d in decisions)
