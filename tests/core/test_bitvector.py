"""Unit tests for the multi-word bitvector (Section 5 mechanics)."""

import pytest

from repro.core.bitvector import MultiWordBitVector, words_needed


class TestConstruction:
    def test_zeros_round_trip(self):
        vec = MultiWordBitVector.zeros(10, word_size=4)
        assert vec.to_int() == 0
        assert vec.word_count == 3

    def test_ones_masks_top_word(self):
        vec = MultiWordBitVector.ones(10, word_size=4)
        assert vec.to_int() == (1 << 10) - 1

    def test_from_int_round_trip(self):
        vec = MultiWordBitVector.from_int(0b1011001, 7, word_size=3)
        assert vec.to_int() == 0b1011001

    def test_from_int_truncates_to_length(self):
        vec = MultiWordBitVector.from_int(0b111111, 3, word_size=8)
        assert vec.to_int() == 0b111

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            MultiWordBitVector.zeros(0)
        with pytest.raises(ValueError):
            MultiWordBitVector.zeros(8, word_size=0)
        with pytest.raises(ValueError):
            MultiWordBitVector.from_int(-1, 8)


class TestQueries:
    def test_bit_indexing(self):
        vec = MultiWordBitVector.from_int(0b1010, 4, word_size=2)
        assert [vec.bit(i) for i in range(4)] == [0, 1, 0, 1]

    def test_bit_out_of_range(self):
        vec = MultiWordBitVector.zeros(4)
        with pytest.raises(IndexError):
            vec.bit(4)
        with pytest.raises(IndexError):
            vec.bit(-1)

    def test_msb_is_match_flag(self):
        assert MultiWordBitVector.from_int(0b0111, 4).msb == 0
        assert MultiWordBitVector.from_int(0b1000, 4).msb == 1


class TestOperations:
    def test_shift_left_carries_across_words(self):
        # 3-bit words; value spans two words so the carry chain is exercised.
        vec = MultiWordBitVector.from_int(0b001100, 6, word_size=3)
        vec.shift_left()
        assert vec.to_int() == 0b011000

    def test_shift_left_drops_live_msb(self):
        vec = MultiWordBitVector.from_int(0b100001, 6, word_size=3)
        vec.shift_left()
        assert vec.to_int() == 0b000010

    def test_or_and(self):
        a = MultiWordBitVector.from_int(0b1100, 4, word_size=2)
        b = MultiWordBitVector.from_int(0b1010, 4, word_size=2)
        assert a.copy().or_with(b).to_int() == 0b1110
        assert a.copy().and_with(b).to_int() == 0b1000

    def test_shape_mismatch_raises(self):
        a = MultiWordBitVector.zeros(4, word_size=2)
        b = MultiWordBitVector.zeros(6, word_size=2)
        with pytest.raises(ValueError):
            a.or_with(b)

    def test_copy_is_independent(self):
        a = MultiWordBitVector.from_int(0b1, 4)
        b = a.copy()
        b.shift_left()
        assert a.to_int() == 0b1
        assert b.to_int() == 0b10


class TestWordsNeeded:
    @pytest.mark.parametrize(
        ("length", "word_size", "expected"),
        [(1, 64, 1), (64, 64, 1), (65, 64, 2), (10_000, 64, 157), (128, 64, 2)],
    )
    def test_counts(self, length, word_size, expected):
        assert words_needed(length, word_size) == expected
