"""Unit tests for GenASM-TB (Algorithm 2), including the Figure 6 examples."""

import pytest

from repro.core.genasm_dc import run_dc_window
from repro.core.genasm_tb import traceback_window
from repro.core.scoring import TracebackCase, TracebackConfig


def trace(text: str, pattern: str, *, limit: int = 1000, config=None):
    window = run_dc_window(text, pattern)
    return traceback_window(window, consume_limit=limit, config=config)


class TestFigure6Examples:
    """The paper's worked traceback examples on text CGTGA, pattern CTGA."""

    def test_deletion_example(self):
        # Figure 6a: alignment at text location 0 -> Match(C), Del(G),
        # Match(T), Match(G), Match(A) = 1M1D3M.
        result = trace("CGTGA", "CTGA")
        assert result.ops == "MDMMM"
        assert result.errors_used == 1
        assert result.text_consumed == 5
        assert result.pattern_consumed == 4

    def test_substitution_example(self):
        # Figure 6b: at text location 1 -> Subs(C), Match(T), Match(G),
        # Match(A).
        result = trace("GTGA", "CTGA")
        assert result.ops == "SMMM"
        assert result.errors_used == 1

    def test_insertion_example(self):
        # Figure 6c: at text location 2 -> Ins(C), Match(T), Match(G),
        # Match(A).
        result = trace("TGA", "CTGA")
        assert result.ops == "IMMM"
        assert result.errors_used == 1


class TestConsumeLimit:
    def test_limit_stops_consumption(self):
        result = trace("ACGTACGTACGT", "ACGTACGTACGT", limit=5)
        assert result.text_consumed == 5
        assert result.pattern_consumed == 5
        assert result.ops == "MMMMM"

    def test_limit_must_be_positive(self):
        window = run_dc_window("ACGT", "ACGT")
        with pytest.raises(ValueError):
            traceback_window(window, consume_limit=0)


class TestAffinePriorities:
    def test_gap_extension_preferred_when_affine(self):
        # Pattern has a 2-base insertion; affine mode should produce one
        # contiguous II run rather than interleaving.
        result = trace("ACGTACGT", "ACGGGTACGT")
        ops = result.ops
        assert ops.count("I") == 2
        first = ops.index("I")
        assert ops[first : first + 2] == "II"

    def test_custom_order_prefers_gaps_over_substitutions(self):
        # With substitution checked last, a mismatch can resolve as I+D.
        order = (
            TracebackCase.INSERTION_EXTEND,
            TracebackCase.DELETION_EXTEND,
            TracebackCase.MATCH,
            TracebackCase.INSERTION_OPEN,
            TracebackCase.DELETION_OPEN,
            TracebackCase.SUBSTITUTION,
        )
        config = TracebackConfig(order=order)
        result = trace("ACGT", "AGGT", config=config)
        # Still a valid traceback that consumes the pattern.
        assert result.pattern_consumed == 4

    def test_order_validation(self):
        with pytest.raises(ValueError):
            TracebackConfig(order=(TracebackCase.MATCH,) * 6)


class TestTracebackConsistency:
    def test_errors_match_non_match_ops(self, rng):
        from tests.conftest import random_dna

        for _ in range(30):
            text = random_dna(rng.randint(4, 24), rng)
            pattern = random_dna(rng.randint(2, len(text)), rng)
            result = trace(text, pattern)
            non_matches = sum(1 for op in result.ops if op != "M")
            assert non_matches == result.errors_used

    def test_ops_consume_correct_counts(self, rng):
        from tests.conftest import random_dna

        for _ in range(30):
            text = random_dna(rng.randint(4, 24), rng)
            pattern = random_dna(rng.randint(2, len(text)), rng)
            result = trace(text, pattern)
            text_ops = sum(1 for op in result.ops if op in "MSD")
            pattern_ops = sum(1 for op in result.ops if op in "MSI")
            assert text_ops == result.text_consumed
            assert pattern_ops == result.pattern_consumed

    def test_window_errors_equal_dc_distance_when_unbounded(self, rng):
        from tests.conftest import random_dna
        from repro.core.genasm_dc import run_dc_window

        for _ in range(30):
            text = random_dna(rng.randint(4, 20), rng)
            pattern = random_dna(rng.randint(2, len(text)), rng)
            window = run_dc_window(text, pattern)
            result = traceback_window(window, consume_limit=10_000)
            if result.pattern_consumed == len(pattern):
                # A full traceback uses exactly the DC-reported distance
                # only if it never "banks" errors; it can use fewer when a
                # free trailing-text suffix exists, never more.
                assert result.errors_used <= window.edit_distance
