"""Unit tests for CIGAR handling."""

import pytest

from repro.core.cigar import Cigar, concat_all
from repro.core.scoring import ScoringScheme


class TestConstruction:
    def test_invalid_ops_rejected(self):
        with pytest.raises(ValueError):
            Cigar("MXZ")

    def test_from_string_round_trip(self):
        cigar = Cigar.from_string("3M1S2M1I1D")
        assert cigar.ops == "MMMSMMID"
        assert str(cigar) == "3M1S2M1I1D"

    def test_from_sam_extended(self):
        cigar = Cigar.from_string("3=1X2=")
        assert cigar.ops == "MMMSMM"

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Cigar.from_string("3M1Q")
        with pytest.raises(ValueError):
            Cigar.from_string("M3")

    def test_empty(self):
        assert str(Cigar("")) == ""
        assert Cigar.from_string("").ops == ""


class TestMeasures:
    def test_edit_distance_counts_non_matches(self):
        assert Cigar("MMSMIDM").edit_distance == 3

    def test_lengths(self):
        cigar = Cigar("MMSID")
        assert cigar.reference_length == 4  # M M S D
        assert cigar.query_length == 4  # M M S I

    def test_to_sam(self):
        assert Cigar("MMSID").to_sam() == "2=1X1I1D"


class TestScoring:
    def test_affine_gap_scoring(self):
        scheme = ScoringScheme(match=1, substitution=-4, gap_open=-6, gap_extend=-1)
        # 3 matches + gap of length 2: 3*1 + (-6 + 2*-1) = -5
        assert Cigar("MMMII").score(scheme) == -5

    def test_two_gaps_pay_two_opens(self):
        scheme = ScoringScheme(match=0, substitution=-1, gap_open=-5, gap_extend=-1)
        assert Cigar("IMI").score(scheme) == -12

    def test_unit_scheme_is_negative_edit_distance(self):
        scheme = ScoringScheme.unit()
        cigar = Cigar("MMSMID")
        assert cigar.score(scheme) == -cigar.edit_distance


class TestValidation:
    def test_valid_transcript(self):
        assert Cigar("MMMM").is_valid_for("ACGT", "ACGT")

    def test_substitution_requires_mismatch(self):
        assert not Cigar("SMMM").is_valid_for("ACGT", "ACGT")
        assert Cigar("SMMM").is_valid_for("TCGT", "ACGT")

    def test_match_requires_equality(self):
        assert not Cigar("MMMM").is_valid_for("ACGT", "ACGA")

    def test_insertion_deletion_consumption(self):
        # text AC-GT vs query ACXGT (X inserted)
        assert Cigar("MMIMM").is_valid_for("ACGT", "ACAGT")
        # text ACGT vs query ACT (G deleted)
        assert Cigar("MMDM").is_valid_for("ACGT", "ACT")

    def test_query_must_be_fully_consumed(self):
        assert not Cigar("MM").is_valid_for("ACGT", "ACGT")

    def test_trailing_reference_is_free(self):
        assert Cigar("MM").is_valid_for("ACGT", "AC")


class TestRunsAndConcat:
    def test_runs(self):
        assert list(Cigar("MMSSMI").runs()) == [("M", 2), ("S", 2), ("M", 1), ("I", 1)]

    def test_concat_all(self):
        merged = concat_all([Cigar("MM"), Cigar("S"), Cigar("MI")])
        assert merged.ops == "MMSMI"
