"""Unit tests for the cycle-level systolic schedule (Figure 5)."""

import pytest

from repro.hardware.systolic import expected_cycles, schedule_window


class TestSchedule:
    def test_figure5_cycle_count(self):
        schedule = schedule_window(text_length=4, rows=8, processing_elements=4)
        assert schedule.total_cycles == 11

    def test_figure5_cell_placement(self):
        schedule = schedule_window(text_length=4, rows=8, processing_elements=4)
        by_key = {(c.text_index, c.row): c for c in schedule.cells}
        # Figure 5's table: T0-R0 in cycle 1 on PE 0 (thread 1).
        assert by_key[(0, 0)].cycle == 1 and by_key[(0, 0)].pe == 0
        # T3-R0 in cycle 4; T0-R3 in cycle 4 on PE 3 (thread 4).
        assert by_key[(3, 0)].cycle == 4
        assert by_key[(0, 3)].cycle == 4 and by_key[(0, 3)].pe == 3
        # T0-R4 (cyclic reuse of PE 0) in cycle 5.
        assert by_key[(0, 4)].cycle == 5 and by_key[(0, 4)].pe == 0
        # T3-R7 (last cell) in cycle 11.
        assert by_key[(3, 7)].cycle == 11

    def test_matches_analytical_model(self, rng):
        for _ in range(40):
            n = rng.randint(1, 30)
            rows = rng.randint(1, 30)
            pes = rng.randint(1, 10)
            schedule = schedule_window(n, rows, pes)
            assert schedule.total_cycles == expected_cycles(n, rows, pes)

    def test_all_cells_scheduled_once(self):
        schedule = schedule_window(7, 5, 3)
        keys = {(c.text_index, c.row) for c in schedule.cells}
        assert len(keys) == len(schedule.cells) == 35

    def test_tb_sram_traffic_192_bits_per_cell(self):
        schedule = schedule_window(8, 4, 4)
        assert schedule.tb_sram_write_bits == 8 * 4 * 192

    def test_dc_sram_traffic_only_on_cyclic_passes(self):
        single_pass = schedule_window(8, 4, 4)
        assert single_pass.dc_sram_reads == 0
        multi_pass = schedule_window(8, 8, 4)
        assert multi_pass.dc_sram_reads > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            schedule_window(0, 1, 1)
        with pytest.raises(ValueError):
            schedule_window(1, 0, 1)
