"""Unit tests for the SRAM models."""

import pytest

from repro.hardware.sram import (
    Sram,
    SramCapacityError,
    SramPortError,
    dc_sram_demand_bytes,
    make_dc_sram,
    make_tb_sram,
)


class TestCapacity:
    def test_allocate_within_capacity(self):
        sram = Sram("test", capacity_bytes=100)
        sram.allocate(60)
        sram.allocate(40)
        assert sram.occupied_bytes == 100

    def test_overflow_raises(self):
        sram = Sram("test", capacity_bytes=100)
        sram.allocate(80)
        with pytest.raises(SramCapacityError):
            sram.allocate(30)

    def test_release(self):
        sram = Sram("test", capacity_bytes=100)
        sram.allocate(50)
        sram.release(20)
        assert sram.occupied_bytes == 30
        with pytest.raises(ValueError):
            sram.release(100)


class TestPorts:
    def test_single_port_enforced(self):
        sram = Sram("test", capacity_bytes=64, read_ports=1)
        sram.read(8)
        with pytest.raises(SramPortError):
            sram.read(8)

    def test_end_cycle_resets_ports(self):
        sram = Sram("test", capacity_bytes=64)
        sram.read(8)
        sram.end_cycle()
        sram.read(8)  # new cycle, OK

    def test_shared_rw_port_conflict(self):
        sram = make_tb_sram(0)
        sram.read(24)
        sram.write(24)
        with pytest.raises(SramPortError):
            sram.end_cycle()

    def test_traffic_counters(self):
        sram = Sram("test", capacity_bytes=64, read_ports=4, write_ports=4)
        sram.read(8)
        sram.write(16)
        assert sram.total_bytes_read == 8
        assert sram.total_bytes_written == 16


class TestPaperSizing:
    def test_dc_sram_is_8kb(self):
        assert make_dc_sram().capacity_bytes == 8 * 1024

    def test_tb_sram_is_1_5kb(self):
        assert make_tb_sram(3).capacity_bytes == 1536

    def test_long_read_demand_fits_dc_sram(self):
        # Section 7: 10 Kbp read at 15% error (11.5 Kbp region) needs ~8 KB.
        demand = dc_sram_demand_bytes(10_000, 11_500)
        assert demand <= 8 * 1024

    def test_window_output_fits_tb_sram(self):
        # 24 B/cycle x 64 cycles/window = 1536 B per PE per window.
        per_pe_window_bytes = 24 * 64
        assert per_pe_window_bytes <= make_tb_sram(0).capacity_bytes
