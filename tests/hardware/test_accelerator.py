"""Unit tests for the functional accelerator model."""

from repro.core.aligner import genasm_align
from repro.hardware.accelerator import GenAsmAccelerator
from repro.hardware.performance_model import alignment_cycles
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


class TestFunctionalEquivalence:
    def test_matches_core_aligner(self, rng):
        accelerator = GenAsmAccelerator()
        for _ in range(10):
            text = random_dna(rng.randint(50, 400), rng)
            pattern = mutate(text, MutationProfile(0.1), rng=rng).sequence
            region = text + random_dna(40, rng)
            hw = accelerator.align(region, pattern)
            sw = genasm_align(region, pattern)
            assert str(hw.alignment.cigar) == str(sw.cigar)
            assert hw.alignment.edit_distance == sw.edit_distance

    def test_sene_mode_same_alignment_less_tb_sram_traffic(self, rng):
        """SENE storage changes only the TB-SRAM accounting, ~3x down."""
        paper = GenAsmAccelerator()
        sene = GenAsmAccelerator(sene_traceback=True)
        text = random_dna(300, rng)
        pattern = mutate(text, MutationProfile(0.1), rng=rng).sequence
        region = text + random_dna(40, rng)
        hw_paper = paper.align(region, pattern)
        hw_sene = sene.align(region, pattern)
        assert str(hw_sene.alignment.cigar) == str(hw_paper.alignment.cigar)
        assert hw_sene.total_cycles == hw_paper.total_cycles
        assert (
            hw_sene.tb_sram_bytes_written
            < hw_paper.tb_sram_bytes_written / 2
        )


class TestCycleAccounting:
    def test_cycles_close_to_analytical_model(self, rng):
        """Measured cycles use each window's actual edit distance, so they
        fall at or below the worst-case analytical projection."""
        accelerator = GenAsmAccelerator()
        text = random_dna(2_000, rng)
        pattern = mutate(text, MutationProfile(0.15), rng=rng).sequence
        region = text + random_dna(400, rng)
        result = accelerator.align(region, pattern)
        projected = alignment_cycles(len(pattern), int(len(pattern) * 0.15))
        assert 0 < result.total_cycles <= projected * 1.5
        assert result.windows > 0

    def test_time_seconds(self, rng):
        accelerator = GenAsmAccelerator()
        result = accelerator.align("ACGTACGTACGT", "ACGTACGTACGT")
        assert result.time_seconds(1e9) == result.total_cycles / 1e9

    def test_tb_sram_traffic_positive(self, rng):
        accelerator = GenAsmAccelerator()
        text = random_dna(300, rng)
        result = accelerator.align(text, text)
        assert result.tb_sram_bytes_written > 0
        assert result.tb_sram_bytes_read > 0

    def test_perfect_match_cycles_scale_with_length(self):
        accelerator = GenAsmAccelerator()
        short = accelerator.align("ACGT" * 30, "ACGT" * 30)
        long = accelerator.align("ACGT" * 120, "ACGT" * 120)
        assert long.total_cycles > short.total_cycles
