"""Configuration-sweep tests: the model must behave sanely off the paper's
design point, since the ablation benches explore exactly those regions."""

import pytest

from repro.hardware.area_power import genasm_area_power
from repro.hardware.performance_model import (
    GenAsmConfig,
    alignment_cycles,
    system_throughput,
    throughput_per_accelerator,
    wavefront_cycles,
)


def _config(**overrides) -> GenAsmConfig:
    base = dict(
        processing_elements=64,
        pe_width_bits=64,
        window_size=64,
        overlap=24,
        frequency_hz=1.0e9,
        vaults=32,
    )
    base.update(overrides)
    return GenAsmConfig(**base)


class TestPeSweep:
    def test_throughput_monotone_in_pes(self):
        previous = 0.0
        for pes in (1, 2, 4, 8, 16, 32, 64):
            thr = throughput_per_accelerator(10_000, 1_500, _config(processing_elements=pes))
            assert thr >= previous
            previous = thr

    def test_diminishing_returns_beyond_rows(self):
        # More PEs than distance rows cannot help a single window.
        at_rows = wavefront_cycles(64, 16, 16)
        beyond = wavefront_cycles(64, 16, 64)
        assert beyond == at_rows

    def test_area_grows_with_pes(self):
        small = genasm_area_power(_config(processing_elements=16))
        large = genasm_area_power(_config(processing_elements=64))
        assert large.accelerator_area_mm2 > small.accelerator_area_mm2


class TestWindowSweep:
    def test_fewer_windows_with_larger_w(self):
        big = alignment_cycles(10_000, 1_500, _config(window_size=96, overlap=32))
        small = alignment_cycles(10_000, 1_500, _config(window_size=32, overlap=12))
        # Larger windows amortize fill better on long reads.
        assert big != small  # distinct design points evaluated

    def test_overlap_increases_cost(self):
        low = alignment_cycles(10_000, 1_500, _config(overlap=8))
        high = alignment_cycles(10_000, 1_500, _config(overlap=48))
        assert high > low  # fewer characters retired per window


class TestVaultAndFrequencySweep:
    def test_linear_vault_scaling(self):
        one = system_throughput(1_000, 100, _config(vaults=1))
        sixteen = system_throughput(1_000, 100, _config(vaults=16))
        assert sixteen == pytest.approx(16 * one)

    def test_frequency_scaling(self):
        slow = throughput_per_accelerator(1_000, 100, _config(frequency_hz=0.5e9))
        fast = throughput_per_accelerator(1_000, 100, _config(frequency_hz=1.0e9))
        assert fast == pytest.approx(2 * slow)

    def test_edit_distance_monotonicity(self):
        # More errors -> longer region -> more windows -> fewer aln/s.
        low_k = throughput_per_accelerator(10_000, 500)
        high_k = throughput_per_accelerator(10_000, 2_000)
        assert high_k < low_k
