"""Unit tests for the 32-vault stacked-memory system."""

import pytest

from repro.hardware.memory import StackedMemorySystem
from repro.hardware.performance_model import GenAsmConfig
from repro.sequences.mutate import MutationProfile, mutate
from tests.conftest import random_dna


def _tasks(rng, count, length=120):
    tasks = []
    for _ in range(count):
        text = random_dna(length, rng)
        pattern = mutate(text, MutationProfile(0.08), rng=rng).sequence
        tasks.append((text + random_dna(20, rng), pattern))
    return tasks


class TestBatchExecution:
    def test_all_tasks_complete(self, rng):
        system = StackedMemorySystem()
        tasks = _tasks(rng, 40)
        batch = system.run_batch(tasks)
        assert len(batch.results) == 40
        for (text, pattern), result in zip(tasks, batch.results):
            assert result.alignment.cigar.is_valid_for(text, pattern)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            StackedMemorySystem().run_batch([])

    def test_vault_parallelism_improves_makespan(self, rng):
        tasks = _tasks(rng, 32)
        one_vault = StackedMemorySystem(GenAsmConfig(vaults=1)).run_batch(tasks)
        many_vaults = StackedMemorySystem(GenAsmConfig(vaults=32)).run_batch(tasks)
        # 32 equal tasks over 32 vaults: near-linear scaling (Section 10.5).
        assert many_vaults.makespan_seconds < one_vault.makespan_seconds / 16

    def test_utilization_high_for_uniform_tasks(self, rng):
        system = StackedMemorySystem(GenAsmConfig(vaults=4))
        batch = system.run_batch(_tasks(rng, 64))
        assert batch.vault_utilization > 0.8

    def test_bandwidth_within_stack_limits(self, rng):
        batch = StackedMemorySystem().run_batch(_tasks(rng, 32))
        assert batch.within_stack_bandwidth

    def test_throughput_consistent_with_makespan(self, rng):
        batch = StackedMemorySystem().run_batch(_tasks(rng, 16))
        assert batch.throughput_per_second == pytest.approx(
            16 / batch.makespan_seconds
        )
