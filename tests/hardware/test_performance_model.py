"""Unit tests for the analytical performance model (Sections 9 and 10.5)."""

import pytest

from repro.hardware.performance_model import (
    DEFAULT_CONFIG,
    GenAsmConfig,
    alignment_cycles,
    dc_cycles_with_windowing,
    dc_cycles_without_windowing,
    dc_window_cycles,
    dram_bandwidth_bytes_per_second,
    memory_footprint_bits_with_windowing,
    memory_footprint_bits_without_windowing,
    system_throughput,
    tb_window_cycles,
    throughput_per_accelerator,
    wavefront_cycles,
    window_count,
)


class TestConfig:
    def test_paper_defaults(self):
        assert DEFAULT_CONFIG.processing_elements == 64
        assert DEFAULT_CONFIG.pe_width_bits == 64
        assert DEFAULT_CONFIG.window_size == 64
        assert DEFAULT_CONFIG.overlap == 24
        assert DEFAULT_CONFIG.consumed_per_window == 40
        assert DEFAULT_CONFIG.vaults == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            GenAsmConfig(processing_elements=0)
        with pytest.raises(ValueError):
            GenAsmConfig(overlap=64)


class TestWavefront:
    def test_figure5_example(self):
        # 4 PEs, 8 distance rows, 4 text characters -> 11 cycles.
        assert wavefront_cycles(4, 8, 4) == 11

    def test_single_pass(self):
        assert wavefront_cycles(64, 64, 64) == 127

    def test_rows_fewer_than_pes(self):
        assert wavefront_cycles(64, 5, 64) == 68

    def test_two_passes(self):
        assert wavefront_cycles(64, 128, 64) == 191

    def test_one_pe_serializes(self):
        assert wavefront_cycles(10, 3, 1) == 30


class TestPerAlignment:
    def test_dc_window_cycles_default_worst_case(self):
        assert dc_window_cycles(DEFAULT_CONFIG) == 127

    def test_tb_window_cycles(self):
        assert tb_window_cycles(DEFAULT_CONFIG) == 40

    def test_window_count_long_read(self):
        # m=10000, k=1500 -> ceil(11500/40) = 288 windows.
        assert window_count(10_000, 1_500, DEFAULT_CONFIG) == 288

    def test_alignment_cycles_long_read(self):
        cycles = alignment_cycles(10_000, 1_500)
        assert cycles == 288 * (127 + 40)

    def test_throughput_scales_with_vaults(self):
        single = throughput_per_accelerator(10_000, 1_500)
        total = system_throughput(10_000, 1_500)
        assert total == pytest.approx(single * 32)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            window_count(0, 10, DEFAULT_CONFIG)
        with pytest.raises(ValueError):
            window_count(10, -1, DEFAULT_CONFIG)


class TestPaperAnchors:
    """Numbers the paper states outright."""

    def test_footprint_without_windowing_is_80gb(self):
        # Section 6: ~80 GB when m=10,000 and k=1,500.
        bits = memory_footprint_bits_without_windowing(10_000, 1_500)
        assert 79 < bits / 8 / 2**30 < 82

    def test_footprint_with_windowing_is_96kb(self):
        # W*3*W*W bits = 96 KB for W=64 (the total TB-SRAM capacity).
        assert memory_footprint_bits_with_windowing() / 8 / 1024 == 96

    def test_sene_footprint_is_about_a_third(self):
        # SENE (Scrooge): (W+1)*(W+1)*W bits ~= 33 KB for W=64, ~2.9x less.
        from repro.hardware.performance_model import (
            memory_footprint_bits_with_windowing_sene,
        )

        sene_bits = memory_footprint_bits_with_windowing_sene()
        assert 32 < sene_bits / 8 / 1024 < 34
        ratio = memory_footprint_bits_with_windowing() / sene_bits
        assert 2.8 < ratio < 3.0

    def test_dram_bandwidth_in_paper_band(self):
        # Section 7: 105-142 MB/s per accelerator for long reads.
        bw = dram_bandwidth_bytes_per_second(10_000, 1_500)
        assert 100e6 < bw < 145e6

    def test_sillax_comparison_ratio(self):
        # Section 10.2: GenASM ~1.9x SillaX's 50M aln/s for ~101bp reads.
        ratio = system_throughput(101, 5) / 50e6
        assert 1.7 < ratio < 2.2

    def test_gact_comparison_single_accelerator(self):
        # Section 10.2: 1 Kbp ~236K aln/s, 10 Kbp ~23.7K aln/s (we land
        # within ~15% below, having serialized DC and TB per window).
        t1k = throughput_per_accelerator(1_000, 150)
        t10k = throughput_per_accelerator(10_000, 1_500)
        assert 180_000 < t1k < 260_000
        assert 18_000 < t10k < 26_000

    def test_dc_windowing_speedup_long_reads(self):
        # Section 10.5 reports 3662x; the closed forms give the same order.
        ratio = dc_cycles_without_windowing(10_000, 1_500) / dc_cycles_with_windowing(
            10_000, 1_500
        )
        assert ratio > 1_000
