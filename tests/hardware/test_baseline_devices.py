"""Unit tests for the calibrated baseline device models."""

import pytest

from repro.hardware.baseline_devices import (
    GENASM_SYSTEM_POWER_W,
    asap_time_s,
    bwa_mem_model,
    edlib_time_s,
    gact_throughput,
    gasal2_throughput,
    genasm_edit_distance_time_s,
    genasm_filter_time_s,
    minimap2_model,
    shouji_time_s,
)
from repro.hardware.performance_model import system_throughput


class TestSoftwareAligners:
    def test_bwa_anchor_reproduction(self):
        """The calibration must reproduce the paper's anchors exactly."""
        bwa = bwa_mem_model()
        genasm_long = system_throughput(10_000, 1_500)
        assert genasm_long / bwa.throughput(10_000, 0.15, threads=12) == pytest.approx(
            648, rel=0.01
        )
        genasm_short = system_throughput(150, 7)
        assert genasm_short / bwa.throughput(150, 0.05, threads=12) == pytest.approx(
            111, rel=0.01
        )

    def test_minimap2_anchor_reproduction(self):
        mm2 = minimap2_model()
        genasm_long = system_throughput(10_000, 1_500)
        assert genasm_long / mm2.throughput(10_000, 0.15, threads=12) == pytest.approx(
            116, rel=0.01
        )

    def test_thread_scaling_matches_paper(self):
        bwa = bwa_mem_model()
        ratio = bwa.throughput(10_000, 0.15, threads=12) / bwa.throughput(
            10_000, 0.15, threads=1
        )
        assert ratio == pytest.approx(7173 / 648, rel=0.01)

    def test_cell_rate_is_plausible(self):
        # A vectorized CPU DP kernel runs 1-50 Gcells/s/thread.
        for model in (bwa_mem_model(), minimap2_model()):
            assert 1e8 < model.cell_rate < 1e12

    def test_power_constants(self):
        assert bwa_mem_model().power_w(threads=12) == 109.5
        assert minimap2_model().power_w(threads=1) == 59.8


class TestHardwareBaselines:
    def test_gact_long_read_anchors(self):
        assert gact_throughput(1_000) == pytest.approx(55_556, rel=0.01)
        # 10 Kbp: paper says 6,289; 1/L tiling gives the same decade.
        assert 5_000 < gact_throughput(10_000) < 7_000

    def test_gact_short_reads_flat(self):
        # Fixed 320-wide tile: all short reads cost one tile.
        assert gact_throughput(100, 0.05) == gact_throughput(250, 0.05)

    def test_gasal2_anchor(self):
        genasm = system_throughput(100, 5)
        assert genasm / gasal2_throughput(100, 1_000_000) == pytest.approx(
            9.2, rel=0.01
        )

    def test_gasal2_unknown_point_rejected(self):
        with pytest.raises(KeyError):
            gasal2_throughput(100, 12345)

    def test_asap_range(self):
        assert asap_time_s(64) == pytest.approx(6.8e-6)
        assert asap_time_s(320) == pytest.approx(18.8e-6)
        with pytest.raises(ValueError):
            asap_time_s(1000)

    def test_shouji_anchor(self):
        speedup = shouji_time_s(100, 5) / genasm_filter_time_s(100, 5)
        assert speedup == pytest.approx(3.7, rel=0.01)

    def test_shouji_speedup_declines_with_length(self):
        s100 = shouji_time_s(100, 5) / genasm_filter_time_s(100, 5)
        s250 = shouji_time_s(250, 15) / genasm_filter_time_s(250, 15)
        assert s250 < s100  # the paper's Section 10.3 trend


class TestEdlibModel:
    def test_fig14_speedup_ranges(self):
        """Paper: 22-716x at 100 Kbp and 262-5413x at 1 Mbp (no traceback).

        The model must land in overlapping decades across the similarity
        sweep."""
        sims = (0.60, 0.99)
        speedups_100k = [
            edlib_time_s(100_000, s) / genasm_edit_distance_time_s(100_000, s)
            for s in sims
        ]
        assert 400 < max(speedups_100k) < 1_000
        assert 15 < min(speedups_100k) < 40

    def test_quadratic_vs_linear_scaling(self):
        # Edlib x100 when length x10 (band grows too); GenASM only x10.
        edlib_ratio = edlib_time_s(1_000_000, 0.9) / edlib_time_s(100_000, 0.9)
        genasm_ratio = genasm_edit_distance_time_s(
            1_000_000, 0.9
        ) / genasm_edit_distance_time_s(100_000, 0.9)
        assert edlib_ratio == pytest.approx(100, rel=0.05)
        assert genasm_ratio == pytest.approx(10, rel=0.15)

    def test_power_ratio_in_paper_band(self):
        # Paper: 548-582x less power than Edlib (per accelerator: 0.101 W).
        from repro.hardware.baseline_devices import (
            EDLIB_POWER_100KBP_W,
            GENASM_ACCELERATOR_POWER_W,
        )

        ratio = EDLIB_POWER_100KBP_W / GENASM_ACCELERATOR_POWER_W
        assert 500 < ratio < 600

    def test_similarity_validation(self):
        with pytest.raises(ValueError):
            edlib_time_s(1000, 0.0)
