"""Unit tests for the Table 1 area/power model."""

import pytest

from repro.hardware.area_power import (
    VAULT_POWER_BUDGET_W,
    genasm_area_power,
    xeon_core_comparison,
)
from repro.hardware.performance_model import GenAsmConfig


class TestTable1:
    def test_per_vault_totals(self):
        breakdown = genasm_area_power()
        assert breakdown.accelerator_area_mm2 == pytest.approx(0.334, abs=0.001)
        assert breakdown.accelerator_power_w == pytest.approx(0.101, abs=0.001)

    def test_32_vault_totals(self):
        breakdown = genasm_area_power()
        assert breakdown.total_area_mm2 == pytest.approx(10.69, abs=0.01)
        assert breakdown.total_power_w == pytest.approx(3.23, abs=0.01)

    def test_component_values(self):
        names = {c.name: c for c in genasm_area_power().components}
        dc = names["GenASM-DC (64 PEs)"]
        assert dc.area_mm2 == pytest.approx(0.049)
        assert dc.power_w == pytest.approx(0.033)
        tb_srams = names["TB-SRAMs (64 x 1.5 KB)"]
        assert tb_srams.area_mm2 == pytest.approx(0.256)

    def test_fits_logic_layer_budget(self):
        breakdown = genasm_area_power()
        assert breakdown.fits_logic_layer()
        assert breakdown.accelerator_power_w < VAULT_POWER_BUDGET_W

    def test_xeon_comparison(self):
        area_ratio, power_ratio = xeon_core_comparison(genasm_area_power())
        assert 90 < area_ratio < 105
        assert 95 < power_ratio < 110


class TestScaling:
    def test_area_scales_with_pes(self):
        small = genasm_area_power(GenAsmConfig(processing_elements=32))
        large = genasm_area_power(GenAsmConfig(processing_elements=128))
        assert small.accelerator_area_mm2 < large.accelerator_area_mm2

    def test_sram_scales_with_kilobytes(self):
        base = genasm_area_power()
        double = genasm_area_power(dc_sram_kb=16.0)
        delta = double.accelerator_area_mm2 - base.accelerator_area_mm2
        assert delta == pytest.approx(0.013, abs=0.001)
