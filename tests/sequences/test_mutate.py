"""Unit tests for the mutation engine."""

import random

import pytest

from repro.baselines.needleman_wunsch import edit_distance_dp
from repro.sequences.mutate import (
    EditKind,
    MutationProfile,
    mutate,
    mutate_to_similarity,
)
from tests.conftest import random_dna


class TestProfiles:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MutationProfile(0.1, 0.5, 0.5, 0.5)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            MutationProfile(1.5)
        with pytest.raises(ValueError):
            MutationProfile(-0.1)


class TestMutate:
    def test_zero_rate_is_identity(self, rng):
        seq = random_dna(200, rng)
        result = mutate(seq, MutationProfile(0.0), rng=rng)
        assert result.sequence == seq
        assert result.edit_count == 0

    def test_substitutions_always_change_base(self, rng):
        seq = random_dna(500, rng)
        profile = MutationProfile(0.2, 1.0, 0.0, 0.0)
        result = mutate(seq, profile, rng=rng)
        assert len(result.sequence) == len(seq)
        for edit in result.edits:
            assert edit.kind is EditKind.SUBSTITUTION
            assert edit.original != edit.replacement

    def test_insertions_grow_sequence(self, rng):
        seq = random_dna(300, rng)
        profile = MutationProfile(0.2, 0.0, 1.0, 0.0)
        result = mutate(seq, profile, rng=rng)
        assert len(result.sequence) == len(seq) + result.edit_count

    def test_deletions_shrink_sequence(self, rng):
        seq = random_dna(300, rng)
        profile = MutationProfile(0.2, 0.0, 0.0, 1.0)
        result = mutate(seq, profile, rng=rng)
        assert len(result.sequence) == len(seq) - result.edit_count

    def test_edit_count_bounds_true_distance(self, rng):
        """Injected edits upper-bound the true edit distance (edits can
        cancel, never compound)."""
        for _ in range(20):
            seq = random_dna(rng.randint(30, 120), rng)
            result = mutate(seq, MutationProfile(0.1), rng=rng)
            assert edit_distance_dp(seq, result.sequence) <= result.edit_count

    def test_observed_rate_tracks_profile(self, rng):
        seq = random_dna(20_000, rng)
        result = mutate(seq, MutationProfile(0.10), rng=rng)
        observed = result.edit_count / len(seq)
        assert 0.08 < observed < 0.12


class TestMutateToSimilarity:
    def test_similarity_validation(self):
        with pytest.raises(ValueError):
            mutate_to_similarity("ACGT", 0.0)
        with pytest.raises(ValueError):
            mutate_to_similarity("ACGT", 1.5)

    def test_target_similarity(self, rng):
        seq = random_dna(10_000, rng)
        result = mutate_to_similarity(seq, 0.9, rng=rng)
        divergence = result.edit_count / len(seq)
        assert 0.08 < divergence < 0.12

    def test_reproducible_with_seeded_rng(self):
        seq = "ACGT" * 100
        a = mutate_to_similarity(seq, 0.8, rng=random.Random(5))
        b = mutate_to_similarity(seq, 0.8, rng=random.Random(5))
        assert a.sequence == b.sequence
