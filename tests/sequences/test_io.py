"""Unit tests for FASTA/FASTQ I/O."""

import io

import pytest

from repro.sequences.io import (
    FastaRecord,
    FastqRecord,
    FastqStreamParser,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)


class TestFasta:
    def test_round_trip(self, tmp_path):
        records = [
            FastaRecord("chr1", "ACGT" * 30, "synthetic"),
            FastaRecord("chr2", "TTTT"),
        ]
        path = tmp_path / "ref.fa"
        write_fasta(records, path)
        back = read_fasta(path)
        assert back == records

    def test_multiline_sequences(self):
        handle = io.StringIO(">a desc here\nACGT\nACGT\n>b\nTT\n")
        records = read_fasta(handle)
        assert records[0] == FastaRecord("a", "ACGTACGT", "desc here")
        assert records[1] == FastaRecord("b", "TT")

    def test_line_wrapping(self):
        out = io.StringIO()
        write_fasta([FastaRecord("x", "A" * 150)], out, line_width=70)
        lines = out.getvalue().strip().split("\n")
        assert lines[0] == ">x"
        assert [len(line) for line in lines[1:]] == [70, 70, 10]

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO("ACGT\n>late\nAC\n"))

    def test_nameless_header_rejected(self):
        with pytest.raises(ValueError, match="no name"):
            read_fasta(io.StringIO(">\nACGT\n"))

    def test_invalid_line_width(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), line_width=0)


class TestFastq:
    def test_round_trip(self, tmp_path):
        records = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG", "##")]
        path = tmp_path / "reads.fq"
        write_fastq(records, path)
        assert read_fastq(path) == records

    def test_quality_length_checked(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    def test_malformed_separator_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\nIIII\nIIII\n"))

    def test_nameless_at_header_names_record_index(self):
        # A bare "@" header used to leak an IndexError from fields[0].
        with pytest.raises(ValueError, match=r"record 1.*no read name"):
            read_fastq(io.StringIO("@\nACGT\n+\nIIII\n"))

    def test_nameless_header_in_later_record(self):
        data = "@ok\nAC\n+\n##\n@   \nACGT\n+\nIIII\n"
        with pytest.raises(ValueError, match=r"record 2.*no read name"):
            read_fastq(io.StringIO(data))

    @pytest.mark.parametrize(
        ("have", "expected_role"),
        [(1, "sequence"), (2, r"'\+' separator"), (3, "quality")],
    )
    def test_truncation_names_missing_line(self, have, expected_role):
        # A record cut off by EOF used to surface as a misleading
        # separator mismatch (or a quality-length error); it must name
        # the record index and which of the 4 lines is missing.
        lines = ["@r1", "ACGT", "+", "IIII"][:have]
        data = "\n".join(lines) + "\n"
        with pytest.raises(ValueError, match=f"record 1.*{expected_role}"):
            read_fastq(io.StringIO(data))

    def test_truncation_in_second_record(self):
        data = "@r1\nAC\n+\n##\n@r2\nACGT\n"
        with pytest.raises(ValueError, match=r"truncated FASTQ: record 2"):
            read_fastq(io.StringIO(data))

    def test_quality_mismatch_names_record(self):
        data = "@r1\nACGT\n+\nII\n"
        with pytest.raises(ValueError, match=r"record 1 \('r1'\): quality length 2"):
            read_fastq(io.StringIO(data))

    def test_blank_lines_between_records_tolerated(self):
        data = "@r1\nAC\n+\n##\n\n\n@r2\nGG\n+\n!!\n"
        records = read_fastq(io.StringIO(data))
        assert [r.name for r in records] == ["r1", "r2"]


class TestFastqStreamParser:
    DATA = "@r1 extra\nACGT\n+\nIIII\n@r2\nGG\n+junk\n##\n\n@r3\nTTTT\n+\n!!!!\n"

    def expected(self):
        return read_fastq(io.StringIO(self.DATA))

    def test_single_feed(self):
        parser = FastqStreamParser()
        records = parser.feed(self.DATA)
        records += parser.close()
        assert records == self.expected()
        assert parser.records_parsed == 3

    def test_char_by_char_matches_iter_fastq(self):
        parser = FastqStreamParser()
        records = []
        for char in self.DATA:
            records.extend(parser.feed(char))
        records.extend(parser.close())
        assert records == self.expected()

    @pytest.mark.parametrize("size", [2, 3, 5, 7, 11])
    def test_arbitrary_chunk_sizes(self, size):
        parser = FastqStreamParser()
        records = []
        for i in range(0, len(self.DATA), size):
            records.extend(parser.feed(self.DATA[i : i + size]))
        records.extend(parser.close())
        assert records == self.expected()

    def test_unterminated_final_line_flushed_on_close(self):
        parser = FastqStreamParser()
        assert parser.feed("@r1\nAC\n+\n##") == []
        assert parser.close() == [FastqRecord("r1", "AC", "##")]

    def test_close_on_partial_record_raises_truncation(self):
        parser = FastqStreamParser()
        parser.feed("@r1\nAC\n+\n##\n@r2\nACGT\n")
        with pytest.raises(ValueError, match=r"truncated FASTQ: record 2"):
            parser.close()

    def test_feed_after_close_rejected(self):
        parser = FastqStreamParser()
        parser.close()
        with pytest.raises(ValueError, match="closed"):
            parser.feed("@r\nA\n+\n#\n")

    def test_close_idempotent(self):
        parser = FastqStreamParser()
        parser.feed("@r1\nAC\n+\n##\n")
        parser.close()
        assert parser.close() == []

    def test_nameless_header_raises_with_index(self):
        parser = FastqStreamParser()
        parser.feed("@ok\nAC\n+\n##\n")
        with pytest.raises(ValueError, match=r"record 2.*no read name"):
            parser.feed("@\nACGT\n+\nIIII\n")


class TestFastqCrlf:
    """CRLF and bare-``\\r`` handling (Windows-written FASTQ).

    Before the ``_strip_eol`` fix, ``iter_fastq`` and
    ``FastqStreamParser.feed`` stripped only ``"\\n"``: every line kept a
    trailing ``\\r`` (sequence *and* quality, so the length check passed
    and the ``\\r`` flowed into mapped reads), and a ``"\\r"``-only blank
    line between records was misreported as a bad ``@`` header.
    """

    RECORDS = [
        FastqRecord("r1", "ACGT", "IIII"),
        FastqRecord("r2", "GGA", "##!"),
    ]
    CRLF_DATA = (
        "@r1 extra\r\nACGT\r\n+\r\nIIII\r\n"
        "@r2\r\nGGA\r\n+junk\r\n##!\r\n"
    )

    def test_crlf_round_trip(self):
        assert read_fastq(io.StringIO(self.CRLF_DATA)) == self.RECORDS

    def test_crlf_sequences_carry_no_carriage_return(self):
        for record in read_fastq(io.StringIO(self.CRLF_DATA)):
            assert "\r" not in record.sequence
            assert "\r" not in record.quality

    def test_mixed_line_endings(self):
        data = "@r1\r\nACGT\n+\r\nIIII\n@r2\nGGA\r\n+\n##!\r\n"
        assert read_fastq(io.StringIO(data)) == self.RECORDS

    def test_carriage_return_only_blank_line_between_records(self):
        # "\r\n" reads as the line "\r"; header.rstrip("\n") stayed truthy
        # and the blank line was misreported as a bad '@' header.
        data = "@r1\r\nACGT\r\n+\r\nIIII\r\n\r\n\r\n@r2\r\nGGA\r\n+\r\n##!\r\n"
        assert read_fastq(io.StringIO(data)) == self.RECORDS

    def test_stream_parser_crlf_single_feed(self):
        parser = FastqStreamParser()
        records = parser.feed(self.CRLF_DATA) + parser.close()
        assert records == self.RECORDS

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 7, 11])
    def test_stream_parser_chunks_split_crlf_anywhere(self, size):
        # Every chunking splits some "\r\n" between feeds at size 1-3; the
        # "\r" must wait in the tail until its "\n" arrives.
        parser = FastqStreamParser()
        records = []
        for i in range(0, len(self.CRLF_DATA), size):
            records.extend(parser.feed(self.CRLF_DATA[i : i + size]))
        records.extend(parser.close())
        assert records == self.RECORDS

    def test_stream_parser_boundary_exactly_between_cr_and_lf(self):
        parser = FastqStreamParser()
        records = parser.feed("@r1\r\nACGT\r\n+\r\nIIII\r")
        # The lone "\r" is still ambiguous: no record may complete yet.
        assert records == []
        records += parser.feed("\n@r2\r\nGGA\r\n+\r\n##!\r\n")
        records += parser.close()
        assert records == self.RECORDS

    def test_stream_parser_crlf_blank_lines_between_records(self):
        parser = FastqStreamParser()
        data = "@r1\r\nACGT\r\n+\r\nIIII\r\n\r\n@r2\r\nGGA\r\n+\r\n##!\r\n"
        assert parser.feed(data) + parser.close() == self.RECORDS

    def test_stream_parser_close_strips_stranded_cr(self):
        # Stream ends between the "\r" and "\n" of the final line ending.
        parser = FastqStreamParser()
        parser.feed("@r1\r\nACGT\r\n+\r\nIIII\r")
        assert parser.close() == [FastqRecord("r1", "ACGT", "IIII")]

    def test_stream_parser_close_stranded_cr_after_blank(self):
        # Trailing blank line cut after its "\r": nothing left to flush.
        parser = FastqStreamParser()
        parser.feed("@r1\r\nACGT\r\n+\r\nIIII\r\n\r")
        assert parser.close() == []
