"""Unit tests for FASTA/FASTQ I/O."""

import io

import pytest

from repro.sequences.io import (
    FastaRecord,
    FastqRecord,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)


class TestFasta:
    def test_round_trip(self, tmp_path):
        records = [
            FastaRecord("chr1", "ACGT" * 30, "synthetic"),
            FastaRecord("chr2", "TTTT"),
        ]
        path = tmp_path / "ref.fa"
        write_fasta(records, path)
        back = read_fasta(path)
        assert back == records

    def test_multiline_sequences(self):
        handle = io.StringIO(">a desc here\nACGT\nACGT\n>b\nTT\n")
        records = read_fasta(handle)
        assert records[0] == FastaRecord("a", "ACGTACGT", "desc here")
        assert records[1] == FastaRecord("b", "TT")

    def test_line_wrapping(self):
        out = io.StringIO()
        write_fasta([FastaRecord("x", "A" * 150)], out, line_width=70)
        lines = out.getvalue().strip().split("\n")
        assert lines[0] == ">x"
        assert [len(line) for line in lines[1:]] == [70, 70, 10]

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError):
            read_fasta(io.StringIO("ACGT\n>late\nAC\n"))

    def test_invalid_line_width(self):
        with pytest.raises(ValueError):
            write_fasta([], io.StringIO(), line_width=0)


class TestFastq:
    def test_round_trip(self, tmp_path):
        records = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG", "##")]
        path = tmp_path / "reads.fq"
        write_fastq(records, path)
        assert read_fastq(path) == records

    def test_quality_length_checked(self):
        with pytest.raises(ValueError):
            FastqRecord("r", "ACGT", "II")

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("r1\nACGT\n+\nIIII\n"))

    def test_malformed_separator_rejected(self):
        with pytest.raises(ValueError):
            read_fastq(io.StringIO("@r1\nACGT\nIIII\nIIII\n"))
