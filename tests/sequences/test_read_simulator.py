"""Unit tests for the PBSIM/ONT/Mason-style read simulators."""

import pytest

from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import (
    illumina_profile,
    ont_r9_profile,
    pacbio_clr_profile,
    simulate_pair,
    simulate_reads,
)


class TestProfiles:
    def test_pacbio_insertion_dominated(self):
        profile = pacbio_clr_profile(0.15)
        assert profile.insertion_fraction > profile.deletion_fraction
        assert profile.insertion_fraction > profile.substitution_fraction
        assert profile.error_rate == 0.15

    def test_ont_deletion_leaning(self):
        profile = ont_r9_profile()
        assert profile.deletion_fraction >= profile.insertion_fraction

    def test_illumina_substitution_dominated(self):
        profile = illumina_profile()
        assert profile.substitution_fraction > 0.9
        assert profile.error_rate == 0.05


class TestSimulateReads:
    def test_ground_truth_recorded(self):
        genome = synthesize_genome(10_000, seed=0)
        reads = simulate_reads(
            genome, count=20, read_length=150, profile=illumina_profile(), seed=1
        )
        assert len(reads) == 20
        for read in reads:
            assert 0 <= read.true_start <= len(genome) - 150
            assert read.true_length == 150
            assert read.edit_count >= 0

    def test_forward_reads_resemble_source(self):
        genome = synthesize_genome(10_000, seed=0)
        reads = simulate_reads(
            genome,
            count=5,
            read_length=100,
            profile=illumina_profile(0.0),
            seed=2,
            both_strands=False,
        )
        for read in reads:
            assert read.sequence == genome.region(read.true_start, 100)
            assert not read.reverse

    def test_reverse_strand_reads_appear(self):
        genome = synthesize_genome(10_000, seed=0)
        reads = simulate_reads(
            genome, count=60, read_length=80, profile=illumina_profile(), seed=3
        )
        assert any(read.reverse for read in reads)
        assert any(not read.reverse for read in reads)

    def test_read_longer_than_genome_rejected(self):
        genome = synthesize_genome(100, seed=0)
        with pytest.raises(ValueError):
            simulate_reads(
                genome, count=1, read_length=200, profile=illumina_profile()
            )

    def test_deterministic_with_seed(self):
        genome = synthesize_genome(5_000, seed=0)
        a = simulate_reads(genome, count=5, read_length=100, profile=illumina_profile(), seed=9)
        b = simulate_reads(genome, count=5, read_length=100, profile=illumina_profile(), seed=9)
        assert [r.sequence for r in a] == [r.sequence for r in b]


class TestSimulatePair:
    def test_similarity_controls_edits(self):
        _, _, low = simulate_pair(2_000, 0.99, seed=1)
        _, _, high = simulate_pair(2_000, 0.70, seed=1)
        assert low < high

    def test_reported_edit_count_matches_injection(self):
        reference, query, edits = simulate_pair(500, 0.9, seed=2)
        from repro.baselines.needleman_wunsch import edit_distance_dp

        assert edit_distance_dp(reference, query) <= edits
