"""Unit tests for synthetic genome generation."""

import pytest

from repro.sequences.genome import Genome, synthesize_genome


class TestGenome:
    def test_region_clamps(self):
        genome = Genome("g", "ACGTACGT")
        assert genome.region(0, 4) == "ACGT"
        assert genome.region(6, 10) == "GT"
        assert genome.region(-5, 3) == "ACG"

    def test_region_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Genome("g", "ACGT").region(0, -1)

    def test_packed_size(self):
        assert Genome("g", "ACGTACGT").packed_size_bytes() == 2

    def test_invalid_symbols_rejected(self):
        with pytest.raises(Exception):
            Genome("g", "ACGU")


class TestSynthesize:
    def test_deterministic_with_seed(self):
        a = synthesize_genome(5_000, seed=42)
        b = synthesize_genome(5_000, seed=42)
        assert a.sequence == b.sequence

    def test_length(self):
        assert len(synthesize_genome(1_234, seed=0)) == 1_234

    def test_gc_content_tracks_parameter(self):
        genome = synthesize_genome(60_000, seed=1, gc_content=0.6)
        gc = sum(1 for c in genome.sequence if c in "GC") / len(genome)
        assert 0.55 < gc < 0.65

    def test_repeats_create_duplicate_kmers(self):
        genome = synthesize_genome(
            20_000, seed=3, repeat_fraction=0.2, repeat_unit_length=500
        )
        seen: dict[str, int] = {}
        duplicates = 0
        k = 30
        for i in range(0, len(genome) - k, k):
            kmer = genome.sequence[i : i + k]
            if kmer in seen:
                duplicates += 1
            seen[kmer] = i
        assert duplicates > 0  # repeats present

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            synthesize_genome(0)
        with pytest.raises(ValueError):
            synthesize_genome(100, gc_content=1.5)
        with pytest.raises(ValueError):
            synthesize_genome(100, repeat_fraction=1.0)
