"""Unit tests for the shard-per-chromosome mmap genome store."""

import pickle

import pytest

from repro.engine.sharded import ShardedEngine
from repro.mapping.pipeline import make_genasm_mapper
from repro.sequences.alphabet import AMINO_ACIDS, DNA, RNA, Alphabet
from repro.sequences.genome import (
    Genome,
    GenomeShard,
    ShardedGenome,
    synthesize_genome,
)
from repro.sequences.io import FastaRecord, write_fasta
from repro.sequences.read_simulator import illumina_profile, simulate_reads


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharded")
    chr1 = synthesize_genome(5_000, seed=30)
    chr2 = synthesize_genome(1_200, seed=31)
    genomes = [
        Genome("chr1", chr1.sequence),
        Genome("chr2", chr2.sequence),
    ]
    sharded = ShardedGenome.write(genomes, directory)
    return genomes, sharded


class TestRoundTrip:
    def test_sequences_identical(self, store):
        genomes, sharded = store
        for genome in genomes:
            assert sharded[genome.name].sequence == genome.sequence

    def test_region_matches_genome_region(self, store):
        genomes, sharded = store
        genome = genomes[0]
        shard = sharded["chr1"]
        # Boundaries, odd offsets (sub-byte), clamping past either end.
        for start, length in [
            (0, 0),
            (0, 1),
            (1, 7),
            (2, 9),
            (3, 11),
            (4_990, 100),
            (-5, 20),
            (0, len(genome)),
        ]:
            assert shard.region(start, length) == genome.region(start, length)

    def test_negative_length_rejected(self, store):
        _, sharded = store
        with pytest.raises(ValueError):
            sharded["chr1"].region(0, -1)

    def test_reopen_from_manifest(self, store, tmp_path):
        genomes, sharded = store
        reopened = ShardedGenome.open(sharded.directory)
        assert reopened.chromosomes == ("chr1", "chr2")
        for genome in genomes:
            assert reopened[genome.name].sequence == genome.sequence
        reopened.close()

    def test_metadata(self, store):
        genomes, sharded = store
        assert len(sharded) == 2
        assert sharded.total_length == sum(len(g) for g in genomes)
        assert "chr1" in sharded and "chrX" not in sharded
        assert sharded.reference_sequences() == [
            ("chr1", len(genomes[0])),
            ("chr2", len(genomes[1])),
        ]
        assert [shard.name for shard in sharded] == ["chr1", "chr2"]

    def test_unknown_chromosome_lists_available(self, store):
        _, sharded = store
        with pytest.raises(KeyError, match="chr1, chr2"):
            sharded.shard("chrX")

    def test_packed_size_is_quarter(self, store):
        genomes, sharded = store
        expected = sum((len(g) + 3) // 4 for g in genomes)
        assert sharded.packed_size_bytes() == expected


class TestWildcards:
    def test_n_runs_round_trip(self, tmp_path):
        sequence = "NN" + "ACGT" * 10 + "NNNNN" + "GGCC" * 3 + "N"
        sharded = ShardedGenome.write(
            [Genome("chrN", sequence)], tmp_path / "wild"
        )
        assert sharded["chrN"].sequence == sequence
        reopened = ShardedGenome.open(tmp_path / "wild")
        assert reopened["chrN"].sequence == sequence
        assert reopened["chrN"].region(1, 6) == sequence[1:7]

    def test_all_wildcard(self, tmp_path):
        sharded = ShardedGenome.write(
            [Genome("gap", "N" * 17)], tmp_path / "gap"
        )
        assert sharded["gap"].sequence == "N" * 17


class TestPickling:
    def test_shard_pickles_by_path(self, store):
        genomes, sharded = store
        blob = pickle.dumps(sharded["chr1"])
        # A path + manifest metadata, not 5 kb of sequence.
        assert len(blob) < 1024
        clone = pickle.loads(blob)
        assert clone.sequence == genomes[0].sequence
        assert clone.ipc_cheap

    def test_rna_alphabet_survives_pickle(self, tmp_path):
        sharded = ShardedGenome.write(
            [Genome("rna", "ACGU" * 8, RNA)], tmp_path / "rna"
        )
        clone = pickle.loads(pickle.dumps(sharded["rna"]))
        assert clone.alphabet is RNA
        assert clone.sequence == "ACGU" * 8


class TestWriteValidation:
    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no chromosomes"):
            ShardedGenome.write([], tmp_path / "empty")

    def test_duplicate_names_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate"):
            ShardedGenome.write(
                [Genome("c", "ACGT"), Genome("c", "GGTT")], tmp_path / "dup"
            )

    def test_mixed_alphabets_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="one alphabet"):
            ShardedGenome.write(
                [Genome("a", "ACGT"), Genome("b", "ACGU", RNA)],
                tmp_path / "mixed",
            )

    def test_unpackable_alphabet_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="2 bits per base"):
            ShardedGenome.write(
                [Genome("p", "MKV", AMINO_ACIDS)], tmp_path / "prot"
            )


class TestOpenErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            ShardedGenome.open(tmp_path / "nowhere")

    def test_bad_format(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="unrecognised"):
            ShardedGenome.open(directory)


class TestFromFasta:
    def test_multi_contig(self, tmp_path):
        records = [
            FastaRecord("chrA", "ACGT" * 50),
            FastaRecord("chrB", "GG" + "N" * 5 + "TTTT"),
        ]
        fasta = tmp_path / "ref.fa"
        write_fasta(records, fasta)
        sharded = ShardedGenome.from_fasta(fasta, tmp_path / "store")
        assert sharded.chromosomes == ("chrA", "chrB")
        for record in records:
            assert sharded[record.name].sequence == record.sequence


class TestMapperConformance:
    """A mapper over a shard must be bit-identical to one over the Genome."""

    @pytest.fixture(scope="class")
    def conformance_setup(self, tmp_path_factory):
        genome = synthesize_genome(20_000, seed=32)
        sharded = ShardedGenome.write(
            [Genome(genome.name, genome.sequence)],
            tmp_path_factory.mktemp("conf"),
        )
        reads = simulate_reads(
            genome,
            count=24,
            read_length=100,
            profile=illumina_profile(0.05),
            seed=33,
        )
        return genome, sharded, [(r.name, r.sequence) for r in reads]

    def test_in_process_identical(self, conformance_setup):
        genome, sharded, reads = conformance_setup
        baseline = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)
        via_shard = make_genasm_mapper(
            sharded[genome.name], seed_length=13, error_rate=0.10
        )
        expected = [r.record.to_line() for r in baseline.map_reads(reads)]
        actual = [r.record.to_line() for r in via_shard.map_reads(reads)]
        assert actual == expected

    def test_sharded_engine_cheap_spec_identical(self, conformance_setup):
        genome, sharded, reads = conformance_setup
        baseline = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)
        expected = [r.record.to_line() for r in baseline.map_reads(reads)]

        engine = ShardedEngine(workers=2, inner="pure")
        try:
            mapper = make_genasm_mapper(
                sharded[genome.name],
                seed_length=13,
                error_rate=0.10,
                engine=engine,
            )
            spec = mapper.shard_spec()
            assert spec is not None and spec.ipc_cheap
            results = mapper.map_reads_batch(reads)
            actual = [r.record.to_line() for r in results]
        finally:
            engine.close()
        assert actual == expected


class TestShardMmapEdgeCases:
    def test_zero_length_region_on_tiny_shard(self, tmp_path):
        sharded = ShardedGenome.write([Genome("t", "A")], tmp_path / "tiny")
        shard = sharded["t"]
        assert shard.region(0, 0) == ""
        assert shard.region(0, 10) == "A"
        assert len(shard) == 1

    def test_close_then_reaccess_reopens(self, tmp_path):
        sharded = ShardedGenome.write(
            [Genome("c", "ACGTACGT")], tmp_path / "close"
        )
        shard = sharded["c"]
        assert shard.sequence == "ACGTACGT"
        shard.close()
        assert shard.sequence == "ACGTACGT"

    def test_truncated_shard_file_detected(self, tmp_path):
        sharded = ShardedGenome.write(
            [Genome("c", "ACGT" * 100)], tmp_path / "trunc"
        )
        shard = sharded["c"]
        path = shard.path
        sharded.close()
        path.write_bytes(path.read_bytes()[:10])
        reopened = ShardedGenome.open(tmp_path / "trunc")
        with pytest.raises(ValueError, match="expected"):
            reopened["c"].sequence
