"""Unit tests for alphabets and the 2-bit encoding."""

import pytest

from repro.sequences.alphabet import AMINO_ACIDS, DNA, RNA, Alphabet, AlphabetError


class TestDna:
    def test_paper_encoding_order(self):
        # Section 9: A=00, C=01, G=10, T=11.
        assert [DNA.index(c) for c in "ACGT"] == [0, 1, 2, 3]

    def test_bits_per_symbol(self):
        assert DNA.bits_per_symbol == 2
        assert AMINO_ACIDS.bits_per_symbol == 5

    def test_encode_decode_round_trip(self):
        packed = DNA.encode("GATTACA")
        assert DNA.decode(packed, 7) == "GATTACA"

    def test_encoded_bytes_matches_paper_ratio(self):
        # 2-bit packing: 4 bases per byte (GRCh38: ~715 MB for ~2.9 Gbp).
        assert DNA.encoded_bytes(4) == 1
        assert DNA.encoded_bytes(2_900_000_000) == 725_000_000

    def test_wildcard_handling(self):
        assert "N" in DNA
        assert DNA.index("N") == 4  # sentinel outside the packed range
        with pytest.raises(AlphabetError):
            DNA.encode("AN")

    def test_validate(self):
        DNA.validate("ACGTN")
        with pytest.raises(AlphabetError):
            DNA.validate("ACGU")

    def test_complement(self):
        assert DNA.complement("ACGTN") == "TGCAN"
        assert DNA.reverse_complement("AACG") == "CGTT"

    def test_rna_complement(self):
        assert RNA.reverse_complement("ACGU") == "ACGU"[::-1].translate(
            str.maketrans("ACGU", "UGCA")
        )


class TestGenericAlphabet:
    def test_protein_has_20_symbols(self):
        assert len(AMINO_ACIDS) == 20

    def test_protein_complement_is_identity(self):
        assert AMINO_ACIDS.complement("ARND") == "ARND"

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError):
            Alphabet("bad", "AAB")

    def test_wildcard_cannot_be_regular_symbol(self):
        with pytest.raises(ValueError):
            Alphabet("bad", "ACGT", wildcard="A")

    def test_custom_text_alphabet(self):
        # Section 11: generic text search just widens the alphabet.
        ascii_like = Alphabet("ascii", "abcdefgh")
        assert ascii_like.bits_per_symbol == 3
        packed = ascii_like.encode("head")
        assert ascii_like.decode(packed, 4) == "head"
