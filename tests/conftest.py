"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest


def random_dna(length: int, rng: random.Random) -> str:
    """Uniform random DNA string."""
    return "".join(rng.choice("ACGT") for _ in range(length))


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for reproducible tests."""
    return random.Random(0xC0FFEE)
