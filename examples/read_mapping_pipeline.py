"""End-to-end read mapping: index, seed, filter, align, emit SAM.

Builds the full Figure 1 pipeline around GenASM: a synthetic reference is
indexed, Illumina-style reads are simulated with ground truth, and each
read flows through seeding, GenASM pre-alignment filtering, and GenASM
alignment. Output lands in ``mapped_reads.sam`` next to this script.

Run:  python examples/read_mapping_pipeline.py
"""

from pathlib import Path

from repro.mapping.pipeline import make_genasm_mapper
from repro.mapping.sam import write_sam
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import illumina_profile, simulate_reads


def main() -> None:
    genome = synthesize_genome(60_000, seed=33, repeat_fraction=0.10)
    reads = simulate_reads(
        genome, count=40, read_length=150, profile=illumina_profile(0.05), seed=34
    )
    mapper = make_genasm_mapper(genome, seed_length=13, error_rate=0.10)

    results = mapper.map_reads([(r.name, r.sequence) for r in reads])
    correct = sum(
        1
        for read, result in zip(reads, results)
        if result.record.is_mapped
        and abs((result.record.position - 1) - read.true_start) <= 20
    )

    out_path = Path(__file__).with_name("mapped_reads.sam")
    write_sam(
        [result.record for result in results],
        out_path,
        reference_sequences=mapper.reference_sequences(),
    )

    stats = mapper.stats
    print(f"reads mapped to true origin : {correct}/{len(reads)}")
    print(f"candidates examined         : {stats.candidates}")
    print(f"rejected by GenASM filter   : {stats.filtered_out} "
          f"({stats.filter_rate:.0%})")
    print(f"alignments executed         : {stats.alignments_run}")
    print(f"SAM written to              : {out_path}")


if __name__ == "__main__":
    main()
