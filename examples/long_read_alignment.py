"""Long-read alignment: PacBio-style reads through GenASM, with the
hardware model projecting what the accelerator would deliver.

Mirrors the Figure 9 workload at laptop scale: simulate noisy 10%-error
long reads, align each against its true region with the windowed GenASM
algorithm (W=64, O=24), validate every CIGAR, and report both the software
result and the accelerator-model throughput.

Run:  python examples/long_read_alignment.py
"""

import time

from repro.core.aligner import GenAsmAligner
from repro.core.scoring import ScoringScheme, TracebackConfig
from repro.hardware.performance_model import (
    alignment_time_seconds,
    system_throughput,
)
from repro.sequences.genome import synthesize_genome
from repro.sequences.read_simulator import pacbio_clr_profile, simulate_reads

READ_LENGTH = 5_000
ERROR_RATE = 0.10
READ_COUNT = 4


def main() -> None:
    genome = synthesize_genome(100_000, seed=7)
    reads = simulate_reads(
        genome,
        count=READ_COUNT,
        read_length=READ_LENGTH,
        profile=pacbio_clr_profile(ERROR_RATE),
        seed=8,
        both_strands=False,
    )
    scheme = ScoringScheme.minimap2()
    aligner = GenAsmAligner(config=TracebackConfig.from_scoring(scheme))

    print(f"aligning {READ_COUNT} simulated PacBio reads "
          f"({READ_LENGTH} bp @ {ERROR_RATE:.0%} error)\n")
    start = time.perf_counter()
    for read in reads:
        region = genome.region(
            read.true_start, read.true_length + int(READ_LENGTH * ERROR_RATE * 2)
        )
        alignment = aligner.align(region, read.sequence)
        ok = alignment.cigar.is_valid_for(region, read.sequence)
        print(
            f"  {read.name}: edits={alignment.edit_distance} "
            f"(injected {read.edit_count}), score={alignment.score(scheme)}, "
            f"CIGAR valid={ok}"
        )
    elapsed = time.perf_counter() - start

    print(f"\npure-Python time: {elapsed:.2f} s "
          f"({READ_COUNT / elapsed:.2f} reads/s)")
    k = int(READ_LENGTH * ERROR_RATE)
    hw_latency = alignment_time_seconds(READ_LENGTH, k)
    print(
        f"accelerator model: {hw_latency * 1e6:.1f} us/read per vault, "
        f"{system_throughput(READ_LENGTH, k):,.0f} reads/s across 32 vaults"
    )


if __name__ == "__main__":
    main()
