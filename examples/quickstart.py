"""Quickstart: the three GenASM use cases in a dozen lines each.

Run:  python examples/quickstart.py
"""

from repro import (
    GenAsmFilter,
    ScoringScheme,
    genasm_align,
    genasm_edit_distance,
)


def main() -> None:
    # ------------------------------------------------------------------
    # Use case 1: read alignment (Section 10.2).
    # The reference region comes from a candidate mapping location; the
    # read carries one deletion and one substitution.
    # ------------------------------------------------------------------
    reference_region = "ACGTACGTTGCAACGTACGTACGT"
    read = "ACGTACGTGCATCGTACGTACGT"
    alignment = genasm_align(reference_region, read)
    print("== read alignment ==")
    print(f"  CIGAR          : {alignment.cigar}")
    print(f"  edit distance  : {alignment.edit_distance}")
    print(f"  BWA-MEM score  : {alignment.score(ScoringScheme.bwa_mem())}")
    print(f"  valid CIGAR    : {alignment.cigar.is_valid_for(reference_region, read)}")

    # ------------------------------------------------------------------
    # Use case 2: pre-alignment filtering (Section 10.3).
    # ------------------------------------------------------------------
    print("\n== pre-alignment filtering ==")
    filt = GenAsmFilter(threshold=2)
    similar = filt.decide(reference_region, read)
    print(f"  similar pair   : accepted={similar.accepted} distance={similar.distance}")
    dissimilar = filt.decide("A" * len(read), read)
    print(f"  dissimilar pair: accepted={dissimilar.accepted}")

    # ------------------------------------------------------------------
    # Use case 3: edit distance calculation (Section 10.4).
    # ------------------------------------------------------------------
    print("\n== edit distance ==")
    result = genasm_edit_distance(reference_region, read, report_cigar=True)
    print(f"  distance       : {result.distance}")
    print(f"  traceback      : {result.cigar}")


if __name__ == "__main__":
    main()
