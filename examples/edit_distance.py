"""Edit distance: the Figure 14 similarity sweep at laptop scale.

Measures our Python GenASM (windowed, linear-time) against Myers'
bit-vector algorithm (Edlib's engine, quadratic-time) across sequence
similarities, then prints the accelerator model's projection at the paper's
100 Kbp / 1 Mbp scale.

Run:  python examples/edit_distance.py
"""

import time

from repro.baselines.myers import myers_global
from repro.core.edit_distance import genasm_edit_distance
from repro.eval.datasets import edlib_pair_dataset
from repro.eval.reporting import format_table
from repro.hardware.baseline_devices import (
    edlib_time_s,
    genasm_edit_distance_time_s,
)

LENGTH = 4_000
SIMILARITIES = (0.60, 0.80, 0.90, 0.99)


def main() -> None:
    dataset = edlib_pair_dataset(length=LENGTH, similarities=SIMILARITIES)
    rows = []
    for (original, mutated), similarity in zip(dataset.pairs, SIMILARITIES):
        start = time.perf_counter()
        exact = myers_global(original, mutated)
        myers_time = time.perf_counter() - start

        start = time.perf_counter()
        result = genasm_edit_distance(original, mutated)
        genasm_time = time.perf_counter() - start

        rows.append(
            [
                f"{similarity:.0%}",
                exact,
                result.distance,
                f"{myers_time * 1e3:.1f} ms",
                f"{genasm_time * 1e3:.1f} ms",
            ]
        )
    print(
        format_table(
            ("Similarity", "Exact distance", "GenASM distance", "Myers time", "GenASM time"),
            rows,
            title=f"measured in Python at {LENGTH} bp",
        )
    )

    rows = []
    for length in (100_000, 1_000_000):
        for similarity in SIMILARITIES:
            edlib = edlib_time_s(length, similarity)
            genasm = genasm_edit_distance_time_s(length, similarity)
            rows.append(
                [
                    f"{length // 1000}Kbp",
                    f"{similarity:.0%}",
                    f"{edlib * 1e3:.2f} ms",
                    f"{genasm * 1e3:.3f} ms",
                    round(edlib / genasm),
                ]
            )
    print()
    print(
        format_table(
            ("Length", "Similarity", "Edlib model", "GenASM model", "Speedup"),
            rows,
            title="accelerator model at paper scale (Figure 14)",
        )
    )


if __name__ == "__main__":
    main()
