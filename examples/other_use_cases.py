"""Section 11's four additional use cases, end to end.

Read-to-read overlap finding, GenASM-built indexing, whole genome
alignment, and generic (non-genomic) text search.

Run:  python examples/other_use_cases.py
"""

from repro.sequences.genome import synthesize_genome
from repro.sequences.mutate import MutationProfile, mutate
from repro.usecases import (
    align_genomes,
    build_index_with_genasm,
    find_overlaps,
    search_text,
)

import random


def main() -> None:
    rng = random.Random(99)

    # ------------------------------------------------------------------
    # Read-to-read overlap finding (de novo assembly, no reference).
    # ------------------------------------------------------------------
    genome = synthesize_genome(3_000, seed=1, repeat_fraction=0.0)
    reads = [
        mutate(genome.region(start, 500), MutationProfile(0.03), rng=rng).sequence
        for start in (0, 300, 600, 900)
    ]
    overlaps = find_overlaps(reads, min_overlap=120, max_error_rate=0.15)
    print("== read-to-read overlaps (de novo assembly) ==")
    for overlap in overlaps:
        print(
            f"  read{overlap.a_index} -> read{overlap.b_index}: "
            f"{overlap.length} bp at offset {overlap.a_start}, "
            f"identity {overlap.identity:.1%}"
        )

    # ------------------------------------------------------------------
    # Hash-table indexing via GenASM exact search.
    # ------------------------------------------------------------------
    index = build_index_with_genasm(genome, k=13)
    print(f"\n== GenASM-built index ==\n  {len(index):,} distinct 13-mers indexed")

    # ------------------------------------------------------------------
    # Whole genome alignment.
    # ------------------------------------------------------------------
    other = mutate(genome.sequence, MutationProfile(0.04), rng=rng).sequence
    wga = align_genomes(genome.sequence, other)
    print(
        f"\n== whole genome alignment ==\n"
        f"  identity {wga.identity:.2%}, "
        f"{wga.substitutions} subs / {wga.insertions} ins / {wga.deletions} dels"
    )

    # ------------------------------------------------------------------
    # Generic text search (fuzzy grep over ASCII text).
    # ------------------------------------------------------------------
    text = (
        "GenASM is an aproximate string matching acceleration framework "
        "for genome sequence analysis"
    )
    matches = search_text(text, "approximate", 2, with_traceback=True)
    print("\n== generic text search ==")
    for match in matches:
        print(
            f"  'approximate' ~ text[{match.start}:] with "
            f"{match.distance} edit(s), CIGAR {match.cigar}"
        )


if __name__ == "__main__":
    main()
