"""Pre-alignment filtering: GenASM vs Shouji vs SHD on candidate pairs.

Reproduces the Section 10.3 accuracy comparison at laptop scale: generate
candidate (reference, read) pairs the way seeding produces them, compute
exact ground-truth distances with Myers' algorithm, and score each filter's
false-accept and false-reject rates.

Run:  python examples/prealignment_filtering.py
"""

from repro.baselines.myers import myers_global
from repro.baselines.shd import ShdFilter
from repro.baselines.shouji import ShoujiFilter
from repro.core.prefilter import GenAsmFilter
from repro.eval.datasets import filter_pair_dataset
from repro.eval.metrics import filter_accuracy
from repro.eval.reporting import format_table


def main() -> None:
    for read_length, threshold in ((100, 5), (250, 15)):
        dataset = filter_pair_dataset(
            read_length=read_length, threshold=threshold, pairs=120, seed=21
        )
        truth = [myers_global(ref, qry) for ref, qry in dataset.pairs]

        rows = []
        for name, filt in (
            ("GenASM", GenAsmFilter(threshold)),
            ("Shouji", ShoujiFilter(threshold)),
            ("SHD", ShdFilter(threshold)),
        ):
            decisions = [filt.accepts(ref, qry) for ref, qry in dataset.pairs]
            accuracy = filter_accuracy(decisions, truth, threshold)
            rows.append(
                [
                    name,
                    f"{accuracy.false_accept_rate:.2%}",
                    f"{accuracy.false_reject_rate:.2%}",
                    accuracy.true_rejects,
                ]
            )
        print(
            format_table(
                ("Filter", "False accept", "False reject", "Pairs rejected"),
                rows,
                title=f"\n{dataset.name} ({len(dataset.pairs)} pairs)",
            )
        )
        print(
            "  -> GenASM computes the exact distance: near-zero false"
            " accepts; estimators trade accepts for speed."
        )


if __name__ == "__main__":
    main()
